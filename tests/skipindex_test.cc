// Skip-index tests: codec round-trips, recursive bitmap compression, and
// the central invariant that skipping never changes the delivered view —
// it only reduces the bytes touched.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "skipindex/codec.h"
#include "skipindex/filter.h"
#include "scengen/rulegen.h"
#include "xml/generator.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using skipindex::DocumentDecoder;
using skipindex::EncodeDocument;
using skipindex::EncodeOptions;
using skipindex::EncodeStats;
using skipindex::MemorySource;

xml::DomDocument Doc(const std::string& text) {
  auto d = xml::DomDocument::Parse(text);
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return std::move(d).value();
}

// Decodes an encoded document fully back into canonical XML text.
std::string DecodeAll(Span encoded) {
  MemorySource src(encoded);
  auto dec = DocumentDecoder::Open(&src);
  EXPECT_TRUE(dec.ok()) << dec.status().ToString();
  xml::CanonicalWriter w;
  for (;;) {
    auto ev = dec.value()->Next();
    EXPECT_TRUE(ev.ok()) << ev.status().ToString();
    if (!ev.ok()) return "";
    if (ev.value().type == xml::EventType::kEnd) break;
    EXPECT_TRUE(w.OnEvent(ev.value()).ok());
  }
  EXPECT_TRUE(w.complete());
  return w.str();
}

TEST(CodecTest, RoundTripsSimpleDocument) {
  auto doc = Doc("<a x=\"1\"><b>hello</b><c/></a>");
  auto enc = EncodeDocument(doc, EncodeOptions{});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(DecodeAll(enc.value()), doc.Serialize());
}

TEST(CodecTest, RoundTripsWithoutIndex) {
  auto doc = Doc("<a><b>x</b><b>y</b></a>");
  EncodeOptions opt;
  opt.with_index = false;
  auto enc = EncodeDocument(doc, opt);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(DecodeAll(enc.value()), doc.Serialize());
}

TEST(CodecTest, RoundTripsNonRecursiveBitmaps) {
  auto doc = Doc("<a><b><c>1</c></b><d/></a>");
  EncodeOptions opt;
  opt.recursive_bitmaps = false;
  auto enc = EncodeDocument(doc, opt);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(DecodeAll(enc.value()), doc.Serialize());
}

TEST(CodecTest, RoundTripsGeneratedProfiles) {
  for (auto profile :
       {xml::DocProfile::kAgenda, xml::DocProfile::kHospital,
        xml::DocProfile::kNewsFeed, xml::DocProfile::kRandom}) {
    xml::GeneratorParams gp;
    gp.profile = profile;
    gp.target_elements = 300;
    gp.seed = 42;
    auto doc = xml::GenerateDocument(gp);
    auto enc = EncodeDocument(doc, EncodeOptions{});
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(DecodeAll(enc.value()), doc.Serialize())
        << xml::DocProfileName(profile);
  }
}

TEST(CodecTest, RejectsGarbage) {
  Bytes junk = {0x42, 0x00, 0x01};
  MemorySource src(junk);
  EXPECT_FALSE(DocumentDecoder::Open(&src).ok());
}

TEST(CodecTest, RejectsTruncatedStream) {
  auto doc = Doc("<a><b>hello world</b></a>");
  auto enc = EncodeDocument(doc, EncodeOptions{}).value();
  Bytes cut(enc.begin(), enc.begin() + static_cast<long>(enc.size() / 2));
  MemorySource src(cut);
  auto dec = DocumentDecoder::Open(&src);
  if (!dec.ok()) return;  // truncation in the header is fine too
  Status st = Status::OK();
  for (;;) {
    auto ev = dec.value()->Next();
    if (!ev.ok()) {
      st = ev.status();
      break;
    }
    if (ev.value().type == xml::EventType::kEnd) break;
  }
  EXPECT_FALSE(st.ok());
}

TEST(CodecTest, RecursiveBitmapsAreSmaller) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 800;
  auto doc = xml::GenerateDocument(gp);
  EncodeStats rec_stats, flat_stats;
  EncodeOptions rec;
  auto e1 = EncodeDocument(doc, rec, &rec_stats);
  ASSERT_TRUE(e1.ok());
  EncodeOptions flat;
  flat.recursive_bitmaps = false;
  auto e2 = EncodeDocument(doc, flat, &flat_stats);
  ASSERT_TRUE(e2.ok());
  EXPECT_LT(rec_stats.index_bitmap_bytes, flat_stats.index_bitmap_bytes);
}

TEST(CodecTest, StatsBreakdownAddsUp) {
  auto doc = Doc("<a><b>text</b></a>");
  EncodeStats stats;
  auto enc = EncodeDocument(doc, EncodeOptions{}, &stats);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(stats.total_bytes, enc.value().size());
  EXPECT_EQ(stats.element_count, 2u);
  EXPECT_GT(stats.dict_bytes, 0u);
  EXPECT_GT(stats.text_bytes, 0u);
  EXPECT_GT(stats.index_size_bytes, 0u);
}

TEST(CodecTest, SkipContentLandsOnClose) {
  auto doc = Doc("<a><big><x>1</x><y>2</y></big><after>3</after></a>");
  auto enc = EncodeDocument(doc, EncodeOptions{}).value();
  MemorySource src(enc);
  auto dec = DocumentDecoder::Open(&src).value();
  // a
  ASSERT_EQ(dec->Next().value().type, xml::EventType::kOpen);
  // big
  auto big = dec->Next().value();
  ASSERT_EQ(big.name, "big");
  EXPECT_TRUE(dec->SubtreeHasTag("x"));
  EXPECT_TRUE(dec->SubtreeHasTag("y"));
  EXPECT_FALSE(dec->SubtreeHasTag("after"));
  ASSERT_TRUE(dec->SkipContent().ok());
  auto close_big = dec->Next().value();
  EXPECT_EQ(close_big.type, xml::EventType::kClose);
  EXPECT_EQ(close_big.name, "big");
  auto after = dec->Next().value();
  EXPECT_EQ(after.type, xml::EventType::kOpen);
  EXPECT_EQ(after.name, "after");
}

TEST(CodecTest, SkipRequiresJustOpened) {
  auto doc = Doc("<a><b>1</b></a>");
  auto enc = EncodeDocument(doc, EncodeOptions{}).value();
  MemorySource src(enc);
  auto dec = DocumentDecoder::Open(&src).value();
  ASSERT_EQ(dec->Next().value().name, "a");
  ASSERT_EQ(dec->Next().value().name, "b");
  ASSERT_EQ(dec->Next().value().type, xml::EventType::kValue);
  EXPECT_FALSE(dec->SkipContent().ok());
}

// --- The invariant: filtering with skips == filtering without ------------

struct SkipInvariantParams {
  xml::DocProfile profile;
  size_t doc_elements;
  size_t num_rules;
  double predicate_prob;
  bool with_query;
  uint64_t seed_base;
  int iterations;
};

class SkipInvariant : public ::testing::TestWithParam<SkipInvariantParams> {};

TEST_P(SkipInvariant, SkippingNeverChangesOutput) {
  const auto& p = GetParam();
  for (int iter = 0; iter < p.iterations; ++iter) {
    uint64_t seed = p.seed_base + static_cast<uint64_t>(iter);
    xml::GeneratorParams gp;
    gp.profile = p.profile;
    gp.target_elements = p.doc_elements;
    gp.seed = seed;
    auto doc = xml::GenerateDocument(gp);
    Rng rng(seed * 31 + 7);
    scengen::RuleGenParams rp;
    rp.num_rules = p.num_rules;
    rp.path.predicate_prob = p.predicate_prob;
    auto rules = scengen::GenerateRules(doc, "u", rp, &rng);

    xpath::PathExpr qexpr;
    const xpath::PathExpr* qptr = nullptr;
    if (p.with_query) {
      auto tags = scengen::CollectTags(doc);
      auto values = scengen::CollectValues(doc);
      scengen::PathGenParams qp;
      std::string qtext = scengen::GeneratePathText(tags, values, qp, &rng);
      qexpr = xpath::ParsePath(qtext).value();
      qptr = &qexpr;
    }

    auto enc = EncodeDocument(doc, EncodeOptions{}).value();

    auto run = [&](bool enable_skip, skipindex::FilterStats* fstats,
                   std::string* out_text) {
      MemorySource src(enc);
      auto dec = DocumentDecoder::Open(&src).value();
      xml::CanonicalWriter w;
      auto ev = core::StreamingEvaluator::Create(rules.ForSubject("u"), qptr,
                                                 &w)
                    .value();
      skipindex::FilterOptions fo;
      fo.enable_skip = enable_skip;
      Status st = skipindex::RunFiltered(dec.get(), ev.get(), fo, fstats);
      ASSERT_TRUE(st.ok()) << st.ToString() << " seed=" << seed;
      *out_text = w.str();
    };

    skipindex::FilterStats with_skip, without_skip;
    std::string v1, v2;
    run(true, &with_skip, &v1);
    run(false, &without_skip, &v2);
    EXPECT_EQ(v1, v2) << "seed=" << seed << "\nrules:\n" << rules.ToText();
    EXPECT_EQ(without_skip.skips, 0u);

    // And both agree with the DOM oracle.
    auto ref = core::BuildAuthorizedView(doc, rules.ForSubject("u"), qptr);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(v1, ref.value().Serialize()) << "seed=" << seed;
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, SkipInvariant,
    ::testing::Values(
        SkipInvariantParams{xml::DocProfile::kRandom, 80, 5, 0.0, false, 100,
                            30},
        SkipInvariantParams{xml::DocProfile::kRandom, 80, 5, 0.5, false, 200,
                            30},
        SkipInvariantParams{xml::DocProfile::kRandom, 100, 6, 0.4, true, 300,
                            30},
        SkipInvariantParams{xml::DocProfile::kAgenda, 200, 6, 0.3, true, 400,
                            10},
        SkipInvariantParams{xml::DocProfile::kHospital, 200, 8, 0.3, true, 500,
                            10},
        SkipInvariantParams{xml::DocProfile::kNewsFeed, 200, 6, 0.3, true, 600,
                            10}),
    [](const ::testing::TestParamInfo<SkipInvariantParams>& info) {
      const auto& p = info.param;
      std::string name = xml::DocProfileName(p.profile);
      name += "_s" + std::to_string(p.seed_base);
      return name;
    });

// Skips must actually fire when access is selective.
TEST(SkipEffectiveness, SelectiveRulesSkipBytes) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 1500;
  gp.seed = 9;
  auto doc = xml::GenerateDocument(gp);
  auto rules =
      core::RuleSet::ParseText("+ u //patient/admin\n").value();
  auto enc = EncodeDocument(doc, EncodeOptions{}).value();
  MemorySource src(enc);
  auto dec = DocumentDecoder::Open(&src).value();
  xml::CanonicalWriter w;
  auto ev =
      core::StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &w)
          .value();
  skipindex::FilterStats stats;
  ASSERT_TRUE(
      skipindex::RunFiltered(dec.get(), ev.get(), {}, &stats).ok());
  EXPECT_GT(stats.skips, 0u);
  EXPECT_GT(stats.bytes_skipped, enc.size() / 20);
}

}  // namespace
}  // namespace csxa
