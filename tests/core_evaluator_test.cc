// Unit tests for the streaming access-control evaluator: conflict
// resolution, propagation, scaffolding, queries, pending predicates.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "core/rule.h"
#include "xml/dom.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using core::AccessRule;
using core::RuleSet;
using core::StreamingEvaluator;
using xml::CanonicalWriter;
using xml::DomDocument;

// Runs the streaming evaluator over `doc_text` with rules in text form for
// `subject` and optional query; returns the canonical delivered view.
std::string Stream(const std::string& doc_text, const std::string& rules_text,
                   const std::string& subject, const std::string& query = "") {
  auto doc = DomDocument::Parse(doc_text);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  auto rules = RuleSet::ParseText(rules_text);
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  xpath::PathExpr qexpr;
  const xpath::PathExpr* qptr = nullptr;
  if (!query.empty()) {
    auto q = xpath::ParsePath(query);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    qexpr = q.value();
    qptr = &qexpr;
  }
  CanonicalWriter out;
  auto ev = StreamingEvaluator::Create(rules.value().ForSubject(subject), qptr,
                                       &out);
  EXPECT_TRUE(ev.ok()) << ev.status().ToString();
  Status st = doc.value().root()->EmitEvents(ev.value().get());
  EXPECT_TRUE(st.ok()) << st.ToString();
  st = ev.value()->Finish();
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out.str();
}

// Reference view for the same inputs.
std::string Ref(const std::string& doc_text, const std::string& rules_text,
                const std::string& subject, const std::string& query = "") {
  auto doc = DomDocument::Parse(doc_text);
  EXPECT_TRUE(doc.ok());
  auto rules = RuleSet::ParseText(rules_text);
  EXPECT_TRUE(rules.ok());
  xpath::PathExpr qexpr;
  const xpath::PathExpr* qptr = nullptr;
  if (!query.empty()) {
    qexpr = xpath::ParsePath(query).value();
    qptr = &qexpr;
  }
  auto view = core::BuildAuthorizedView(doc.value(),
                                        rules.value().ForSubject(subject), qptr);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  return view.value().Serialize();
}

TEST(EvaluatorTest, ClosedPolicyDeniesEverything) {
  EXPECT_EQ(Stream("<a><b>x</b></a>", "", "u"), "");
}

TEST(EvaluatorTest, RootPermissionDeliversAll) {
  EXPECT_EQ(Stream("<a><b>x</b></a>", "+ u /a", "u"), "<a><b>x</b></a>");
}

TEST(EvaluatorTest, PermissionPropagatesToDescendants) {
  EXPECT_EQ(Stream("<a><b><c>1</c></b><d>2</d></a>", "+ u /a/b", "u"),
            "<a><b><c>1</c></b></a>");
}

TEST(EvaluatorTest, DenialOverridesAtSameDepth) {
  // Both rules match <b>: denial takes precedence.
  EXPECT_EQ(Stream("<a><b>x</b></a>", "+ u //b\n- u /a/b", "u"), "");
}

TEST(EvaluatorTest, MostSpecificOverridesShallowerDenial) {
  // deny at <a>, permit deeper at <c>: c is delivered, a is scaffolding.
  EXPECT_EQ(Stream("<a><b><c>x</c></b><d>y</d></a>", "- u /a\n+ u //c", "u"),
            "<a><b><c>x</c></b></a>");
}

TEST(EvaluatorTest, MostSpecificDenialWins) {
  EXPECT_EQ(Stream("<a><b><c>x</c></b></a>", "+ u /a\n- u //c", "u"),
            "<a><b></b></a>");
}

TEST(EvaluatorTest, ScaffoldingHasNoAttributesOrText) {
  // <a> is denied but has a permitted descendant: its tag appears bare.
  EXPECT_EQ(
      Stream("<a id=\"1\">secret<b k=\"v\">x</b></a>", "+ u //b", "u"),
      "<a><b k=\"v\">x</b></a>");
}

TEST(EvaluatorTest, WildcardStep) {
  EXPECT_EQ(Stream("<a><b><c>1</c></b><x><c>2</c></x></a>", "+ u /a/*/c", "u"),
            "<a><b><c>1</c></b><x><c>2</c></x></a>");
}

TEST(EvaluatorTest, DescendantAxisDeep) {
  EXPECT_EQ(Stream("<a><b><a><c>x</c></a></b></a>", "+ u //a//c", "u"),
            "<a><b><a><c>x</c></a></b></a>");
}

TEST(EvaluatorTest, ChildAxisIsNotDescendant) {
  EXPECT_EQ(Stream("<a><x><b>1</b></x><b>2</b></a>", "+ u /a/b", "u"),
            "<a><b>2</b></a>");
}

TEST(EvaluatorTest, ExistencePredicateHolds) {
  EXPECT_EQ(Stream("<a><b><c/><d>x</d></b><b><d>y</d></b></a>",
                   "+ u //b[c]", "u"),
            "<a><b><c></c><d>x</d></b></a>");
}

TEST(EvaluatorTest, ExistencePredicateFails) {
  EXPECT_EQ(Stream("<a><b><d>y</d></b></a>", "+ u //b[c]", "u"), "");
}

TEST(EvaluatorTest, PredicateResolvesAfterTarget) {
  // The rule is pending at <d> (c arrives later): classic pending case.
  EXPECT_EQ(Stream("<a><b><d>keep</d><c/></b></a>", "+ u //b[c]/d", "u"),
            "<a><b><d>keep</d></b></a>");
}

TEST(EvaluatorTest, PendingResolvesFalseAtContextClose) {
  EXPECT_EQ(Stream("<a><b><d>drop</d></b><c/></a>", "+ u //b[c]/d", "u"), "");
}

TEST(EvaluatorTest, ValuePredicateEquality) {
  EXPECT_EQ(Stream("<a><b><t>private</t><x>1</x></b><b><t>public</t><x>2</x></b></a>",
                   "+ u //b[t=\"public\"]", "u"),
            "<a><b><t>public</t><x>2</x></b></a>");
}

TEST(EvaluatorTest, ValuePredicateNumericComparison) {
  EXPECT_EQ(Stream("<a><p><age>9</age><n>kid</n></p><p><age>30</age><n>adult</n></p></a>",
                   "+ u //p[age>=\"18\"]", "u"),
            "<a><p><age>30</age><n>adult</n></p></a>");
}

TEST(EvaluatorTest, NegativePendingPredicate) {
  // Denial depends on a predicate resolved later in the subtree.
  EXPECT_EQ(Stream("<a><b><x>1</x><flag/></b><b><x>2</x></b></a>",
                   "+ u /a\n- u //b[flag]", "u"),
            "<a><b><x>2</x></b></a>");
}

TEST(EvaluatorTest, QueryRestrictsAuthorizedView) {
  EXPECT_EQ(Stream("<a><b>1</b><c>2</c></a>", "+ u /a", "u", "//b"),
            "<a><b>1</b></a>");
}

TEST(EvaluatorTest, QueryDoesNotWidenAccess) {
  EXPECT_EQ(Stream("<a><b>1</b><c>2</c></a>", "+ u //c", "u", "//b"), "");
}

TEST(EvaluatorTest, QueryWithPredicate) {
  EXPECT_EQ(Stream("<a><b><k/><v>x</v></b><b><v>y</v></b></a>", "+ u /a", "u",
                   "//b[k]"),
            "<a><b><k></k><v>x</v></b></a>");
}

TEST(EvaluatorTest, MultipleSubjectsAreIsolated) {
  std::string doc = "<a><b>x</b></a>";
  std::string rules = "+ u /a\n- v //b";
  EXPECT_EQ(Stream(doc, rules, "u"), "<a><b>x</b></a>");
  EXPECT_EQ(Stream(doc, rules, "v"), "");
}

TEST(EvaluatorTest, TextInheritsElementAuthorization) {
  EXPECT_EQ(Stream("<a>top<b>inner</b>tail</a>", "+ u //b", "u"),
            "<a><b>inner</b></a>");
}

TEST(EvaluatorTest, DeepRecursiveTags) {
  EXPECT_EQ(Stream("<a><a><a><b>x</b></a></a></a>", "+ u /a/a/a/b", "u"),
            "<a><a><a><b>x</b></a></a></a>");
}

TEST(EvaluatorTest, AgreesWithOracleOnHandwrittenCases) {
  struct Case {
    const char* doc;
    const char* rules;
    const char* query;
  };
  const Case cases[] = {
      {"<a><b><c>1</c></b><b><d>2</d></b></a>", "+ u //b[c]\n- u //d", ""},
      {"<a><b><c>1</c><c>2</c></b></a>", "+ u //c", "//b"},
      {"<r><x><y><z>d</z></y></x></r>", "- r /r\n+ r //z", ""},
      {"<r><a><b/></a><a><b><c/></b></a></r>", "+ u //a[b/c]", ""},
      {"<r><a>5</a><a>15</a></r>", "+ u //a[.//a<\"10\"]", ""},
      {"<r><a><v>1</v></a><b><v>1</v></b></r>", "+ u //*[v=\"1\"]", "//a"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(Stream(c.doc, c.rules, "u", c.query),
              Ref(c.doc, c.rules, "u", c.query))
        << "doc=" << c.doc << " rules=" << c.rules << " query=" << c.query;
  }
}

TEST(EvaluatorTest, StatsArepopulated) {
  auto doc = DomDocument::Parse("<a><b><c>x</c></b></a>").value();
  auto rules = RuleSet::ParseText("+ u //b[c]").value();
  CanonicalWriter out;
  auto ev = StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &out)
                .value();
  ASSERT_TRUE(doc.root()->EmitEvents(ev.get()).ok());
  ASSERT_TRUE(ev->Finish().ok());
  const core::EvaluatorStats& st = ev->stats();
  EXPECT_GT(st.events, 0u);
  EXPECT_GT(st.nfa_transitions, 0u);
  EXPECT_EQ(st.obligations_created, 1u);
  EXPECT_GT(st.modeled_ram_peak, 0u);
}

TEST(EvaluatorTest, RejectsUnbalancedStream) {
  auto rules = RuleSet::ParseText("+ u /a").value();
  CanonicalWriter out;
  auto ev = StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &out)
                .value();
  ASSERT_TRUE(ev->OnEvent(xml::Event::Open("a")).ok());
  Status st = ev->Finish();
  EXPECT_FALSE(st.ok());
}

TEST(EvaluatorTest, RejectsCloseWithoutOpen) {
  auto rules = RuleSet::ParseText("+ u /a").value();
  CanonicalWriter out;
  auto ev = StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &out)
                .value();
  EXPECT_FALSE(ev->OnEvent(xml::Event::Close("a")).ok());
}

}  // namespace
}  // namespace csxa
