// DSP store and PKI registry tests, including rule-set round-trips and
// the publisher facade.

#include <gtest/gtest.h>

#include "core/rule.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "xml/generator.h"

namespace csxa {
namespace {

Bytes MakeContainer(uint64_t seed, size_t payload_size, size_t chunk) {
  Rng rng(seed);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes payload(payload_size, 0x5C);
  return crypto::SecureContainer::Seal(key, payload, chunk, &rng);
}

TEST(DspTest, OpenDocumentBatchesHeaderRulesVersion) {
  dsp::DspServer server;
  Bytes container = MakeContainer(1, 2000, 512);
  ASSERT_TRUE(server.Publish("d", container, Bytes{1, 2, 3}).ok());
  EXPECT_EQ(server.size(), 1u);

  // One round trip carries header + sealed rules + version.
  uint64_t requests_before = server.stats().requests;
  auto open = server.OpenDocument("d");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(server.stats().requests, requests_before + 1);
  EXPECT_EQ(open.value().header.size(), crypto::ContainerHeader::kWireSize);
  EXPECT_EQ(open.value().sealed_rules, (Bytes{1, 2, 3}));
  EXPECT_EQ(open.value().rules_version, 1u);
  EXPECT_FALSE(open.value().not_modified);

  auto full = server.GetContainer("d");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().size(), container.size());
  EXPECT_GT(server.stats().bytes_served, 0u);
}

TEST(DspTest, GetChunksServesSpansInOrder) {
  dsp::DspServer server;
  ASSERT_TRUE(server.Publish("d", MakeContainer(1, 2000, 512), Bytes{}).ok());

  // One span of two chunks plus a singleton span: one round trip.
  uint64_t requests_before = server.stats().requests;
  auto chunks = server.GetChunks("d", {{0, 2}, {3, 1}});
  ASSERT_TRUE(chunks.ok());
  EXPECT_EQ(server.stats().requests, requests_before + 1);
  ASSERT_EQ(chunks.value().size(), 3u);
  EXPECT_EQ(chunks.value()[0].ciphertext.size(), 512u);
  EXPECT_EQ(server.stats().chunks_served, 3u);

  // Per-chunk equals the corresponding batch element.
  auto single = server.GetChunks("d", {{3, 1}});
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.value()[0].ciphertext, chunks.value()[2].ciphertext);

  // Out-of-range spans fail as a whole.
  EXPECT_FALSE(server.GetChunks("d", {{99, 1}}).ok());
  EXPECT_FALSE(server.GetChunks("d", {{0, 99}}).ok());
}

TEST(DspTest, RevalidationByKnownVersion) {
  dsp::DspServer server;
  ASSERT_TRUE(server.Publish("d", MakeContainer(4, 600, 256), Bytes{7}).ok());

  auto first = server.OpenDocument("d");
  ASSERT_TRUE(first.ok());
  uint64_t full_wire = first.value().wire_bytes;

  // Same version: not-modified, bodies elided, tiny reply.
  auto again = server.OpenDocument("d", first.value().rules_version);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().not_modified);
  EXPECT_TRUE(again.value().header.empty());
  EXPECT_TRUE(again.value().sealed_rules.empty());
  EXPECT_LT(again.value().wire_bytes, full_wire);
  EXPECT_EQ(server.stats().not_modified, 1u);

  // A policy update bumps the version: revalidation returns full bodies.
  ASSERT_TRUE(server.UpdateRules("d", Bytes{9}).ok());
  auto after = server.OpenDocument("d", first.value().rules_version);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().not_modified);
  EXPECT_EQ(after.value().rules_version, 2u);
  EXPECT_EQ(after.value().sealed_rules, (Bytes{9}));
}

TEST(DspTest, UnknownDocumentIsNotFound) {
  dsp::DspServer server;
  EXPECT_EQ(server.OpenDocument("x").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.GetChunks("x", {{0, 1}}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server.UpdateRules("x", {}).code(), StatusCode::kNotFound);
  EXPECT_EQ(server.Remove("x").code(), StatusCode::kNotFound);
}

TEST(DspTest, RuleUpdateBumpsVersion) {
  dsp::DspServer server;
  ASSERT_TRUE(server.Publish("d", MakeContainer(2, 600, 256), Bytes{1}).ok());
  EXPECT_EQ(server.OpenDocument("d").value().rules_version, 1u);
  ASSERT_TRUE(server.UpdateRules("d", Bytes{9}).ok());
  auto open = server.OpenDocument("d");
  EXPECT_EQ(open.value().rules_version, 2u);
  EXPECT_EQ(open.value().sealed_rules, (Bytes{9}));
}

TEST(DspTest, RejectsGarbageContainer) {
  dsp::DspServer server;
  EXPECT_FALSE(server.Publish("d", Bytes{1, 2, 3}, Bytes{}).ok());
}

TEST(DspTest, RemoveWorks) {
  dsp::DspServer server;
  ASSERT_TRUE(server.Publish("d", MakeContainer(3, 600, 256), Bytes{}).ok());
  ASSERT_TRUE(server.Remove("d").ok());
  EXPECT_EQ(server.size(), 0u);
}

TEST(DspTest, VersionStaysMonotoneAcrossRepublishAndRemove) {
  // Version-keyed caches rely on the version never revisiting a value a
  // client may have cached — across republish AND remove-then-republish.
  dsp::DspServer server;
  ASSERT_TRUE(server.Publish("d", MakeContainer(5, 600, 256), Bytes{1}).ok());
  ASSERT_TRUE(server.UpdateRules("d", Bytes{2}).ok());  // -> v2
  ASSERT_TRUE(server.Publish("d", MakeContainer(6, 600, 256), Bytes{3}).ok());
  EXPECT_EQ(server.OpenDocument("d").value().rules_version, 3u);
  ASSERT_TRUE(server.Remove("d").ok());
  ASSERT_TRUE(server.Publish("d", MakeContainer(7, 600, 256), Bytes{4}).ok());
  EXPECT_EQ(server.OpenDocument("d").value().rules_version, 4u);
  // A revalidation with any historical version gets the full new bodies.
  auto open = server.OpenDocument("d", /*known_rules_version=*/3);
  ASSERT_TRUE(open.ok());
  EXPECT_FALSE(open.value().not_modified);
  EXPECT_EQ(open.value().sealed_rules, (Bytes{4}));
}

TEST(PkiTest, GrantFetchRevoke) {
  pki::KeyRegistry registry;
  Rng rng(4);
  auto key = crypto::SymmetricKey::Generate(&rng);
  registry.RegisterUser("alice");
  ASSERT_TRUE(registry.Grant("doc", "alice", key).ok());
  auto fetched = registry.Fetch("doc", "alice");
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched.value() == key);
  EXPECT_EQ(registry.GrantCount("doc"), 1u);

  ASSERT_TRUE(registry.Revoke("doc", "alice").ok());
  EXPECT_FALSE(registry.Fetch("doc", "alice").ok());
  EXPECT_FALSE(registry.Revoke("doc", "alice").ok());
}

TEST(PkiTest, UnknownUserCannotBeGranted) {
  pki::KeyRegistry registry;
  Rng rng(5);
  auto key = crypto::SymmetricKey::Generate(&rng);
  EXPECT_EQ(registry.Grant("doc", "ghost", key).code(),
            StatusCode::kNotFound);
}

TEST(PkiTest, KeysDistributedCounter) {
  pki::KeyRegistry registry;
  Rng rng(6);
  registry.RegisterUser("a");
  registry.RegisterUser("b");
  auto key = crypto::SymmetricKey::Generate(&rng);
  ASSERT_TRUE(registry.Grant("d1", "a", key).ok());
  ASSERT_TRUE(registry.Grant("d1", "b", key).ok());
  ASSERT_TRUE(registry.Grant("d2", "a", key).ok());
  EXPECT_EQ(registry.keys_distributed(), 3u);
  EXPECT_EQ(registry.Users().size(), 2u);
}

TEST(PublisherTest, PublishGrantsEverySubject) {
  dsp::DspServer server;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&server, &registry, 7);
  xml::GeneratorParams gp;
  gp.target_elements = 60;
  gp.seed = 8;
  auto doc = xml::GenerateDocument(gp);
  auto receipt = publisher.Publish(
      "d", doc, "+ alice /agenda\n- bob //note\n+ alice //meeting\n");
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(registry.Fetch("d", "alice").ok());
  EXPECT_TRUE(registry.Fetch("d", "bob").ok());
  EXPECT_EQ(registry.GrantCount("d"), 2u);
  EXPECT_GT(receipt.value().container_bytes,
            receipt.value().sealed_rules_bytes);
}

TEST(PublisherTest, UpdateRulesGrantsNewSubjects) {
  dsp::DspServer server;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&server, &registry, 9);
  xml::GeneratorParams gp;
  gp.target_elements = 60;
  gp.seed = 10;
  auto doc = xml::GenerateDocument(gp);
  auto receipt = publisher.Publish("d", doc, "+ alice /agenda\n");
  ASSERT_TRUE(receipt.ok());
  auto update = publisher.UpdateRules("d", receipt.value().key,
                                      "+ alice /agenda\n+ carol //meeting\n");
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(registry.Fetch("d", "carol").ok());
  EXPECT_EQ(server.OpenDocument("d").value().rules_version, 2u);
}

TEST(PublisherTest, BadRulesRejected) {
  dsp::DspServer server;
  pki::KeyRegistry registry;
  proxy::Publisher publisher(&server, &registry, 11);
  xml::GeneratorParams gp;
  gp.target_elements = 30;
  auto doc = xml::GenerateDocument(gp);
  EXPECT_FALSE(publisher.Publish("d", doc, "not a rule line\n").ok());
  EXPECT_FALSE(publisher.Publish("d", doc, "+ alice not-an-xpath\n").ok());
}

TEST(RuleSetTest, TextAndBinaryRoundTrips) {
  std::string text =
      "# comment line\n"
      "+ alice //meeting\n"
      "- bob //note[visibility=\"private\"]\n"
      "+ carol /agenda/member\n";
  auto set = core::RuleSet::ParseText(text);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value().size(), 3u);
  // Text round-trip.
  auto again = core::RuleSet::ParseText(set.value().ToText());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().ToText(), set.value().ToText());
  // Binary round-trip.
  ByteWriter w;
  set.value().EncodeTo(&w);
  ByteReader r(w.bytes());
  auto decoded = core::RuleSet::DecodeFrom(&r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().ToText(), set.value().ToText());
}

TEST(RuleSetTest, ParseErrors) {
  EXPECT_FALSE(core::RuleSet::ParseText("* alice //x\n").ok());
  EXPECT_FALSE(core::RuleSet::ParseText("+ alice\n").ok());
  EXPECT_FALSE(core::RuleSet::ParseText("+\n").ok());
  EXPECT_FALSE(core::RuleSet::ParseText("+ alice not xpath [\n").ok());
  EXPECT_TRUE(core::RuleSet::ParseText("").ok());
  EXPECT_TRUE(core::RuleSet::ParseText("\n\n# only comments\n").ok());
}

TEST(RuleSetTest, SubjectsInInsertionOrder) {
  auto set = core::RuleSet::ParseText(
                 "+ bob //a\n+ alice //b\n- bob //c\n")
                 .value();
  auto subjects = set.Subjects();
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], "bob");
  EXPECT_EQ(subjects[1], "alice");
  EXPECT_EQ(set.ForSubject("bob").size(), 2u);
  EXPECT_EQ(set.ForSubject("nobody").size(), 0u);
}

}  // namespace
}  // namespace csxa
