// Cross-cutting invariance property: the delivered view is a pure
// function of (document, rules, subject, query) — chunk size, integrity
// mode, skip on/off and card profile must never change it, only costs.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/rule.h"
#include "core/rule_envelope.h"
#include "crypto/container.h"
#include "skipindex/codec.h"
#include "soe/card_engine.h"
#include "workload/scenarios.h"
#include "xml/generator.h"

namespace csxa {
namespace {

// The shared in-memory container provider (batch protocol) keeps this
// suite focused on the invariance property itself.
using InMemoryProvider = soe::ContainerChunkProvider;

struct InvarianceParams {
  size_t chunk_size;
  crypto::IntegrityMode mode;
  bool use_skip;
  bool modern_card;
};

class ChunkingInvariance : public ::testing::TestWithParam<InvarianceParams> {};

TEST_P(ChunkingInvariance, DeliveredViewIsIdentical) {
  const InvarianceParams& p = GetParam();
  // Golden view computed once with the canonical configuration.
  static std::string* golden = nullptr;

  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = 500;
  gp.seed = 2024;
  auto doc = xml::GenerateDocument(gp);
  auto scenario = workload::HospitalScenario();

  Rng rng(p.chunk_size * 7 + static_cast<uint64_t>(p.mode) * 3 +
          (p.use_skip ? 1 : 0));
  auto key = crypto::SymmetricKey::Generate(&rng);
  auto encoded = skipindex::EncodeDocument(doc, {}).value();
  Bytes container_bytes = crypto::SecureContainer::Seal(
      key, encoded, p.chunk_size, &rng, p.mode);
  auto container = crypto::SecureContainer::Parse(container_bytes).value();
  ByteWriter hw;
  container.header().EncodeTo(&hw);
  auto rules = core::RuleSet::ParseText(scenario.rules_text).value();
  Bytes sealed_rules = core::SealRuleSet(key, rules, /*version=*/1, &rng);

  soe::CardEngine card(p.modern_card ? soe::CardProfile::ModernElement()
                                     : soe::CardProfile::EGate());
  card.InstallKey("doc", key);
  InMemoryProvider provider(&container);
  soe::SessionOptions opts;
  opts.subject = "researcher";
  opts.query_text = "//treatment";
  opts.use_skip = p.use_skip;
  auto out = card.RunSession("doc", hw.bytes(), sealed_rules, &provider, opts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  if (golden == nullptr) {
    golden = new std::string(out.value().view_xml);
    EXPECT_FALSE(golden->empty());
  } else {
    EXPECT_EQ(out.value().view_xml, *golden)
        << "chunk=" << p.chunk_size << " mode=" << static_cast<int>(p.mode)
        << " skip=" << p.use_skip;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChunkingInvariance,
    ::testing::Values(
        InvarianceParams{512, crypto::IntegrityMode::kChunkMac, true, false},
        InvarianceParams{64, crypto::IntegrityMode::kChunkMac, true, false},
        InvarianceParams{128, crypto::IntegrityMode::kChunkMac, false, false},
        InvarianceParams{256, crypto::IntegrityMode::kMerkle, true, false},
        InvarianceParams{1024, crypto::IntegrityMode::kMerkle, false, false},
        InvarianceParams{4096, crypto::IntegrityMode::kChunkMac, true, false},
        InvarianceParams{300, crypto::IntegrityMode::kChunkMac, true, false},
        InvarianceParams{512, crypto::IntegrityMode::kChunkMac, true, true},
        InvarianceParams{97, crypto::IntegrityMode::kMerkle, true, false}),
    [](const ::testing::TestParamInfo<InvarianceParams>& info) {
      const auto& p = info.param;
      std::string name = "c" + std::to_string(p.chunk_size);
      name += p.mode == crypto::IntegrityMode::kMerkle ? "_merkle" : "_mac";
      name += p.use_skip ? "_skip" : "_noskip";
      name += p.modern_card ? "_modern" : "_egate";
      return name;
    });

}  // namespace
}  // namespace csxa
