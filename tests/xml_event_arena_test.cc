// Arena-lifetime and borrowed-view regression tests: EventArena ownership
// rules, Materialize() round-trips, borrowed parser/decoder streams vs
// their owning twins, and the EventSink materializing default.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "skipindex/byte_source.h"
#include "skipindex/codec.h"
#include "xml/dom.h"
#include "xml/event.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace csxa {
namespace {

using xml::AttrView;
using xml::Event;
using xml::EventArena;
using xml::EventType;
using xml::EventView;
using xml::PullParser;
using xml::RecordedEvents;

TEST(EventArenaTest, CopyOwnsBytesIndependently) {
  EventArena arena;
  std::string src = "hello arena";
  std::string_view v = arena.Copy(src);
  src.assign(src.size(), 'x');  // clobber the original
  EXPECT_EQ(v, "hello arena");
  EXPECT_EQ(arena.bytes_used(), 11u);
}

TEST(EventArenaTest, CopyEmptyCostsNothing) {
  EventArena arena;
  std::string_view v = arena.Copy("");
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(EventArenaTest, LargeStringsSpanBlocks) {
  EventArena arena;
  // Larger than the 4 KB minimum block: must still come back intact.
  std::string big(100000, 'b');
  big[0] = 'a';
  big[big.size() - 1] = 'z';
  std::string_view bv = arena.Copy(big);
  std::string small = "tail";
  std::string_view sv = arena.Copy(small);
  EXPECT_EQ(bv, big);
  EXPECT_EQ(sv, "tail");
  EXPECT_EQ(arena.bytes_used(), big.size() + small.size());
}

TEST(EventArenaTest, EarlierViewsSurviveLaterGrowth) {
  EventArena arena;
  // Force many block rollovers; every earlier view must stay intact
  // (the "never invalidated by later arena use" rule).
  std::vector<std::string_view> views;
  std::vector<std::string> expect;
  for (int i = 0; i < 2000; ++i) {
    expect.push_back("str-" + std::to_string(i) +
                     std::string(static_cast<size_t>(i % 61), 'p'));
    views.push_back(arena.Copy(expect.back()));
  }
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], expect[i]) << i;
  }
}

TEST(EventArenaTest, ResetReclaimsAndReuses) {
  EventArena arena;
  for (int i = 0; i < 100; ++i) {
    arena.Copy(std::string(512, static_cast<char>('a' + i % 26)));
  }
  EXPECT_GT(arena.bytes_used(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  std::string_view v = arena.Copy("after reset");
  EXPECT_EQ(v, "after reset");
  EXPECT_EQ(arena.bytes_used(), 11u);
}

TEST(EventArenaTest, RecordDeepCopiesEventWithAttrs) {
  EventArena arena;
  std::string name = "patient";
  std::string aname = "id";
  std::string aval = "42";
  std::vector<AttrView> attrs = {AttrView{aname, aval}};
  EventView v = EventView::Open(name, attrs.data(), attrs.size(), TagId{7});
  EventView rec = arena.Record(v);
  // Clobber every producer-side buffer; the recorded view must not care.
  name.assign(name.size(), '?');
  aname.assign(aname.size(), '?');
  aval.assign(aval.size(), '?');
  attrs[0] = AttrView{"zz", "zz"};
  EXPECT_EQ(rec.name, "patient");
  ASSERT_EQ(rec.num_attrs, 1u);
  EXPECT_EQ(rec.attrs[0].name, "id");
  EXPECT_EQ(rec.attrs[0].value, "42");
  EXPECT_EQ(rec.tag_id, TagId{7});
}

TEST(EventViewTest, MaterializeRoundTripEquality) {
  std::string doc =
      "<r a=\"1\" b=\"two &amp; three\"><x>text &lt;esc&gt;</x><y/></r>";
  auto owning = PullParser::ParseToEvents(doc).value();
  std::vector<AttrView> scratch;
  for (const Event& e : owning) {
    EventView v = xml::ViewOf(e, &scratch);
    Event back = v.Materialize();
    EXPECT_EQ(back, e);
    EXPECT_EQ(back.tag_id, e.tag_id);  // advisory id preserved
    EXPECT_TRUE(v == xml::ViewOf(back, &scratch));
  }
}

TEST(EventViewTest, EqualityIgnoresTagId) {
  EventView a = EventView::Open("t", nullptr, 0, TagId{1});
  EventView b = EventView::Open("t", nullptr, 0, TagId{2});
  EXPECT_TRUE(a == b);
  EventView c = EventView::Open("u", nullptr, 0, TagId{1});
  EXPECT_FALSE(a == c);
}

TEST(EventViewTest, DefaultSinkMaterializes) {
  // A sink that only implements OnEvent must still accept borrowed
  // streams, receiving owning copies via the default OnEventView.
  class OwningOnly : public xml::EventSink {
   public:
    Status OnEvent(const Event& event) override {
      if (event.type != EventType::kEnd) events.push_back(event);
      return Status::OK();
    }
    std::vector<Event> events;
  };
  OwningOnly sink;
  std::string doc = "<a k=\"v\"><b>hi</b></a>";
  ASSERT_TRUE(PullParser::ParseAll(doc, &sink).ok());
  auto expected = PullParser::ParseToEvents(doc).value();
  EXPECT_EQ(sink.events, expected);
}

TEST(BorrowedParserTest, NextViewMatchesNext) {
  std::string doc =
      "<root note=\"a&apos;b\">\n"
      "  <item id=\"1\">plain</item>\n"
      "  <item id=\"2\">esc &amp; aped</item>\n"
      "  <mixed>one<!-- c -->two<![CDATA[<raw>]]></mixed>\n"
      "  <empty/>\n"
      "</root>";
  PullParser owning(doc);
  PullParser borrowed(doc);
  for (;;) {
    auto e = owning.Next();
    auto v = borrowed.NextView();
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v.value().Materialize(), e.value());
    if (e.value().type == EventType::kEnd) break;
  }
}

TEST(BorrowedParserTest, ParseToRecordedMatchesParseToEvents) {
  std::string doc =
      "<agenda><meeting visibility=\"private\">budget &amp; plan</meeting>"
      "<note>x</note></agenda>";
  auto owning = PullParser::ParseToEvents(doc).value();
  RecordedEvents rec = PullParser::ParseToRecorded(doc).value();
  ASSERT_EQ(rec.events.size(), owning.size());
  for (size_t i = 0; i < owning.size(); ++i) {
    EXPECT_EQ(rec.events[i].Materialize(), owning[i]) << i;
  }
  EXPECT_GT(rec.arena.bytes_used(), 0u);
}

TEST(BorrowedParserTest, RecordedStreamSurvivesParserDeath) {
  RecordedEvents rec;
  std::vector<Event> owning;
  {
    std::string doc = "<a x=\"1\"><b>deep text</b></a>";
    rec = PullParser::ParseToRecorded(doc).value();
    owning = PullParser::ParseToEvents(doc).value();
    // doc and both parsers die here; rec's arena owns every byte.
  }
  ASSERT_EQ(rec.events.size(), owning.size());
  for (size_t i = 0; i < owning.size(); ++i) {
    EXPECT_EQ(rec.events[i].Materialize(), owning[i]) << i;
  }
}

TEST(BorrowedDecoderTest, NextViewMatchesNext) {
  auto doc = xml::DomDocument::Parse(
                 "<r a=\"v\"><p id=\"1\">alpha</p><p id=\"2\">beta "
                 "gamma</p><q><deep>x</deep></q></r>")
                 .value();
  auto encoded = skipindex::EncodeDocument(doc, {}).value();

  skipindex::MemorySource s1{Span(encoded)};
  skipindex::MemorySource s2{Span(encoded)};
  auto d1 = skipindex::DocumentDecoder::Open(&s1).value();
  auto d2 = skipindex::DocumentDecoder::Open(&s2).value();
  for (;;) {
    auto e = d1->Next();
    auto v = d2->NextView();
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    EXPECT_EQ(v.value().Materialize(), e.value());
    EXPECT_EQ(v.value().tag_id, e.value().tag_id);
    if (e.value().type == EventType::kEnd) break;
  }
}

TEST(BorrowedDecoderTest, RecordedDecodeRoundTripsToCanonicalXml) {
  std::string text = "<r><a k=\"v\">one</a><b><c>two</c></b></r>";
  auto doc = xml::DomDocument::Parse(text).value();
  auto encoded = skipindex::EncodeDocument(doc, {}).value();
  skipindex::MemorySource src{Span(encoded)};
  auto dec = skipindex::DocumentDecoder::Open(&src).value();
  RecordedEvents rec;
  for (;;) {
    auto v = dec->NextView();
    ASSERT_TRUE(v.ok()) << v.status().ToString();
    if (v.value().type == EventType::kEnd) break;
    rec.Append(v.value());
  }
  xml::CanonicalWriter w;
  for (const EventView& v : rec.events) {
    ASSERT_TRUE(w.OnEventView(v).ok());
  }
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), doc.Serialize());
}

TEST(BorrowedWriterTest, ViewAndOwningRenderIdentically) {
  std::string text = "<a x=\"q&quot;e\"><b>t&amp;u</b><c/></a>";
  auto events = PullParser::ParseToEvents(text).value();
  xml::CanonicalWriter by_event;
  xml::CanonicalWriter by_view;
  std::vector<AttrView> scratch;
  for (const Event& e : events) {
    ASSERT_TRUE(by_event.OnEvent(e).ok());
    ASSERT_TRUE(by_view.OnEventView(xml::ViewOf(e, &scratch)).ok());
  }
  EXPECT_EQ(by_view.str(), by_event.str());
}

}  // namespace
}  // namespace csxa
