// Fault-tolerance suite for the replicated DSP fabric (`ctest -L fault`;
// scripts/ci.sh also runs it under ThreadSanitizer).
//
// What is pinned here:
//  - FaultInjectingService breaks its backend exactly as scripted: crash
//    and partition windows reject without applying, timeouts apply then
//    lose the response, blackholes ack without applying, duplicates apply
//    twice;
//  - ReplicatedService never acks a write below quorum, never serves a
//    read below the version acked to its writer (stale_reads_served == 0
//    is an invariant, not a statistic), promotes a new primary when the
//    old one dies, and reintegrates recovered replicas by op-log replay —
//    including the full-log rebuild of a replica that lied (blackholed
//    acks);
//  - RetryingClient turns transient IoErrors into latency, leaves
//    authoritative rejections alone, and absorbs the kRemove-retry
//    NotFound race;
//  - the invalidation fan-out pushes committed policy updates into the
//    terminal cache, and losing those notifications costs freshness
//    round-trips, never correctness;
//  - AsyncDispatcher keeps its per-document FIFO running across backend
//    errors and still resolves every future;
//  - the full load harness rides out a scripted crash + partition with
//    zero failed operations and zero stale reads.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "crypto/container.h"
#include "dissem/invalidation.h"
#include "dsp/async.h"
#include "dsp/caching.h"
#include "dsp/fault.h"
#include "dsp/replicated.h"
#include "dsp/retrying.h"
#include "dsp/service.h"
#include "dsp/sharded.h"
#include "dsp/store.h"
#include "workload/load.h"

namespace csxa {
namespace {

Bytes RulesBlobFor(uint64_t version) {
  return Bytes(16, static_cast<uint8_t>(version & 0xFF));
}

Bytes MakeContainer(uint64_t seed, size_t payload_bytes = 600) {
  Rng rng(seed);
  auto key = crypto::SymmetricKey::Generate(&rng);
  return crypto::SecureContainer::Seal(
      key, Bytes(payload_bytes, static_cast<uint8_t>(seed)), 256, &rng);
}

// A 3-replica group over single DspServers, each behind an injector.
struct Fabric {
  static constexpr size_t kReplicas = 3;
  dsp::DspServer stores[kReplicas];
  std::vector<std::unique_ptr<dsp::FaultInjectingService>> injectors;
  std::unique_ptr<dsp::ReplicatedService> group;

  explicit Fabric(dsp::ReplicationOptions ropt = {}) {
    std::vector<dsp::Service*> ptrs;
    for (size_t i = 0; i < kReplicas; ++i) {
      injectors.push_back(
          std::make_unique<dsp::FaultInjectingService>(&stores[i]));
      ptrs.push_back(injectors.back().get());
    }
    group = std::make_unique<dsp::ReplicatedService>(ptrs, ropt);
  }
};

// --- Fault injector semantics ------------------------------------------------

TEST(FaultInjectorTest, CrashWindowRejectsWithoutApplying) {
  dsp::DspServer store;
  dsp::FaultOptions fopt;
  fopt.schedule.push_back({0, 2, dsp::FaultKind::kCrash});
  dsp::FaultInjectingService faulty(&store, fopt);

  // Requests 0 and 1 hit the crash window; request 2 is healthy.
  auto r0 = faulty.Publish("doc", MakeContainer(1), RulesBlobFor(1));
  EXPECT_EQ(r0.code(), StatusCode::kIoError);
  EXPECT_EQ(store.stats().documents, 0u);  // nothing applied
  EXPECT_EQ(faulty.OpenDocument("doc").status().code(), StatusCode::kIoError);
  ASSERT_TRUE(faulty.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  EXPECT_EQ(store.stats().documents, 1u);
  EXPECT_EQ(faulty.crashes(), 2u);
  EXPECT_EQ(faulty.faults_injected(), 2u);
}

TEST(FaultInjectorTest, TimeoutAppliesButLosesTheResponse) {
  dsp::DspServer store;
  dsp::FaultOptions fopt;
  fopt.schedule.push_back({0, 1, dsp::FaultKind::kTimeout});
  dsp::FaultInjectingService faulty(&store, fopt);

  // The at-least-once hazard: the "failed" publish actually happened.
  EXPECT_EQ(faulty.Publish("doc", MakeContainer(1), RulesBlobFor(1)).code(),
            StatusCode::kIoError);
  EXPECT_EQ(store.stats().documents, 1u);
  EXPECT_TRUE(faulty.OpenDocument("doc").ok());
  EXPECT_EQ(faulty.timeouts(), 1u);
}

TEST(FaultInjectorTest, BlackholeAcksWithoutApplying) {
  dsp::DspServer store;
  dsp::FaultOptions fopt;
  fopt.schedule.push_back({0, 1, dsp::FaultKind::kBlackhole});
  dsp::FaultInjectingService faulty(&store, fopt);

  // The lying replica: success reported, nothing stored.
  EXPECT_TRUE(faulty.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  EXPECT_EQ(store.stats().documents, 0u);
  EXPECT_EQ(faulty.blackholes(), 1u);
}

TEST(FaultInjectorTest, DuplicateAppliesTwice) {
  dsp::DspServer store;
  ASSERT_TRUE(store.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  dsp::FaultOptions fopt;
  fopt.schedule.push_back({0, 1, dsp::FaultKind::kDuplicate});
  dsp::FaultInjectingService faulty(&store, fopt);

  // A replayed kUpdateRules delivery bumps the version twice.
  dsp::Request req;
  req.op = dsp::Op::kUpdateRules;
  req.doc_id = "doc";
  req.sealed_rules = RulesBlobFor(3);
  auto resp = faulty.Execute(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.value().rules_version, 3u);
  EXPECT_EQ(faulty.duplicates(), 1u);
}

TEST(FaultInjectorTest, ManualTogglesDominateAndHeal) {
  dsp::DspServer store;
  dsp::FaultInjectingService faulty(&store);
  ASSERT_TRUE(faulty.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  faulty.set_partitioned(true);
  EXPECT_EQ(faulty.OpenDocument("doc").status().code(), StatusCode::kIoError);
  faulty.set_partitioned(false);
  // State was retained across the partition.
  EXPECT_TRUE(faulty.OpenDocument("doc").ok());
  EXPECT_EQ(faulty.partitions(), 1u);
}

// --- Replicated writes and reads ---------------------------------------------

TEST(ReplicatedServiceTest, WritesReachEveryReplicaWithOneVersionHistory) {
  Fabric fab;
  ASSERT_TRUE(fab.group->Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  for (uint64_t v = 2; v <= 5; ++v) {
    ASSERT_TRUE(fab.group->UpdateRules("doc", RulesBlobFor(v)).ok());
  }
  EXPECT_EQ(fab.group->committed_version("doc"), 5u);
  EXPECT_EQ(fab.group->log_size(), 5u);
  // Every replica holds the same canonical version (not a private counter).
  for (auto& store : fab.stores) {
    auto open = store.OpenDocument("doc");
    ASSERT_TRUE(open.ok());
    EXPECT_EQ(open.value().rules_version, 5u);
  }
  const auto rstats = fab.group->replication_stats();
  EXPECT_EQ(rstats.writes, 5u);
  EXPECT_EQ(rstats.stale_reads_served, 0u);
}

TEST(ReplicatedServiceTest, SubQuorumWriteFailsButRetryHeals) {
  Fabric fab;
  ASSERT_TRUE(fab.group->Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  // Both backups gone: the primary alone is below the 2/3 majority.
  fab.injectors[1]->set_crashed(true);
  fab.injectors[2]->set_crashed(true);
  EXPECT_EQ(fab.group->UpdateRules("doc", RulesBlobFor(2)).code(),
            StatusCode::kIoError);
  EXPECT_EQ(fab.group->replication_stats().quorum_failures, 1u);
  // The stale guard already covers v2 (the primary applied it): a retry
  // after one backup heals must land on v3, not re-serve v1.
  fab.injectors[1]->set_crashed(false);
  fab.group->HeartbeatTick();  // reintegrates replica 1 via catch-up
  ASSERT_TRUE(fab.group->UpdateRules("doc", RulesBlobFor(3)).ok());
  EXPECT_EQ(fab.group->committed_version("doc"), 3u);
  auto open = fab.group->OpenDocument("doc");
  ASSERT_TRUE(open.ok());
  EXPECT_GE(open.value().rules_version, 3u);
}

TEST(ReplicatedServiceTest, PrimaryCrashPromotesABackupMidWrite) {
  Fabric fab;
  ASSERT_TRUE(fab.group->Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  EXPECT_EQ(fab.group->primary(), 0u);
  fab.injectors[0]->set_crashed(true);
  // The write itself demotes the dead primary and succeeds on a backup
  // (passive detection: no heartbeat needed).
  ASSERT_TRUE(fab.group->UpdateRules("doc", RulesBlobFor(2)).ok());
  EXPECT_NE(fab.group->primary(), 0u);
  const auto rstats = fab.group->replication_stats();
  EXPECT_GE(rstats.primary_promotions, 1u);
  EXPECT_EQ(fab.group->committed_version("doc"), 2u);
}

TEST(ReplicatedServiceTest, ReadsRerouteAroundAPartitionedReplica) {
  Fabric fab;
  ASSERT_TRUE(fab.group->Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  fab.injectors[1]->set_partitioned(true);
  // Round-robin guarantees some reads pick replica 1 first; all must
  // still succeed by moving on.
  for (int i = 0; i < 9; ++i) {
    EXPECT_TRUE(fab.group->OpenDocument("doc").ok());
  }
  const auto rstats = fab.group->replication_stats();
  EXPECT_GE(rstats.read_reroutes, 1u);
  EXPECT_EQ(rstats.stale_reads_served, 0u);
}

TEST(ReplicatedServiceTest, CrashedReplicaCatchesUpFromTheOpLog) {
  Fabric fab;
  ASSERT_TRUE(fab.group->Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  fab.injectors[2]->set_crashed(true);
  for (uint64_t v = 2; v <= 6; ++v) {
    ASSERT_TRUE(fab.group->UpdateRules("doc", RulesBlobFor(v)).ok());
  }
  // Replica 2 missed five updates. Heal it; the next heartbeat replays
  // the suffix and rejoins it.
  fab.injectors[2]->set_crashed(false);
  fab.group->HeartbeatTick();
  const auto states = fab.group->replica_states();
  EXPECT_EQ(states[2], dsp::ReplicaState::kInSync);
  auto open = fab.stores[2].OpenDocument("doc");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().rules_version, 6u);
  const auto rstats = fab.group->replication_stats();
  EXPECT_GE(rstats.reintegrations, 1u);
  EXPECT_GE(rstats.catchup_ops_replayed, 5u);
}

TEST(ReplicatedServiceTest, LaggingReplicaIsCaughtAndNeverServesStale) {
  // Replica 1 blackholes one window of writes: it acks them without
  // applying, so the group believes it is in sync while it serves v1.
  Fabric fab;
  ASSERT_TRUE(fab.group->Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  dsp::FaultOptions lying;
  // Window over replica 1's own request counter: it has seen 1 request
  // (the publish), so the next few writes fall in [1, 4).
  lying.schedule.push_back({1, 4, dsp::FaultKind::kBlackhole});
  // Rebuild replica 1's injector with the lying schedule.
  fab.injectors[1] = std::make_unique<dsp::FaultInjectingService>(
      &fab.stores[1], lying);
  // NOTE: group still points at the old injector — rebuild the group too.
  std::vector<dsp::Service*> ptrs = {fab.injectors[0].get(),
                                     fab.injectors[1].get(),
                                     fab.injectors[2].get()};
  dsp::ReplicatedService group(ptrs, dsp::ReplicationOptions{});
  // Re-seed the new group's log/committed state through its own write
  // path (replica stores already hold v1; republish overwrites).
  ASSERT_TRUE(group.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  ASSERT_TRUE(group.UpdateRules("doc", RulesBlobFor(2)).ok());
  ASSERT_TRUE(group.UpdateRules("doc", RulesBlobFor(3)).ok());
  // Replica 1 acked v2/v3 but still holds v1 — a stale read waiting to
  // happen. Every open must still return the committed version.
  for (int i = 0; i < 9; ++i) {
    auto open = group.OpenDocument("doc");
    ASSERT_TRUE(open.ok());
    EXPECT_GE(open.value().rules_version, group.committed_version("doc"));
  }
  const auto rstats = group.replication_stats();
  EXPECT_GE(rstats.stale_reads_detected, 1u);
  EXPECT_EQ(rstats.stale_reads_served, 0u);
  // The liar was demoted; a heartbeat rebuilds it from the full log.
  group.HeartbeatTick();
  EXPECT_EQ(group.replica_states()[1], dsp::ReplicaState::kInSync);
  auto open = fab.stores[1].OpenDocument("doc");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().rules_version, group.committed_version("doc"));
}

// --- Retrying client ---------------------------------------------------------

TEST(RetryingClientTest, TransientErrorsBecomeLatencyNotFailures) {
  dsp::DspServer store;
  ASSERT_TRUE(store.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  dsp::FaultOptions fopt;
  fopt.schedule.push_back({1, 3, dsp::FaultKind::kPartition});
  dsp::FaultInjectingService faulty(&store, fopt);
  dsp::RetryingClient client(&faulty);

  EXPECT_TRUE(client.OpenDocument("doc").ok());  // request 0: healthy
  // Requests 1 and 2 are partitioned; attempts 3+ succeed.
  EXPECT_TRUE(client.OpenDocument("doc").ok());
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.exhausted(), 0u);
  EXPECT_GT(client.modeled_backoff_seconds(), 0.0);
}

TEST(RetryingClientTest, AuthoritativeRejectionsAreNotRetried) {
  dsp::DspServer store;
  dsp::RetryingClient client(&store);
  EXPECT_EQ(client.OpenDocument("missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.retries(), 0u);
}

TEST(RetryingClientTest, ExhaustsBoundedBudgetAgainstADeadBackend) {
  dsp::DspServer store;
  dsp::FaultInjectingService faulty(&store);
  faulty.set_crashed(true);
  dsp::RetryOptions ropt;
  ropt.max_attempts = 3;
  dsp::RetryingClient client(&faulty, ropt);
  int backoffs = 0;
  client.set_on_backoff([&backoffs](int, double) { ++backoffs; });
  EXPECT_EQ(client.OpenDocument("doc").status().code(), StatusCode::kIoError);
  EXPECT_EQ(client.retries(), 2u);  // attempts 2 and 3
  EXPECT_EQ(backoffs, 2);
  EXPECT_EQ(client.exhausted(), 1u);
}

TEST(RetryingClientTest, RemoveRetryAbsorbsTheNotFoundRace) {
  dsp::DspServer store;
  ASSERT_TRUE(store.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  dsp::FaultOptions fopt;
  fopt.schedule.push_back({0, 1, dsp::FaultKind::kTimeout});
  dsp::FaultInjectingService faulty(&store, fopt);
  dsp::RetryingClient client(&faulty);

  // The first attempt applies the remove but loses the response; the
  // retry's NotFound is our own success echoing back.
  EXPECT_TRUE(client.Remove("doc").ok());
  EXPECT_EQ(client.remove_races_absorbed(), 1u);
  EXPECT_EQ(store.stats().documents, 0u);
}

// --- Invalidation fan-out ----------------------------------------------------

TEST(InvalidationFanoutTest, CommittedUpdatesPushIntoTheCache) {
  Fabric fab;
  dsp::CachingClient cached(fab.group.get());
  dissem::InvalidationFanout fanout;
  fanout.Subscribe([&cached](const std::string& doc_id, uint64_t version) {
    cached.Invalidate(doc_id, version);
  });
  fab.group->set_on_write_committed(
      [&fanout](const std::string& doc_id, uint64_t version) {
        fanout.Publish(doc_id, version);
      });

  ASSERT_TRUE(cached.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  ASSERT_TRUE(cached.OpenDocument("doc").ok());  // fill
  ASSERT_EQ(cached.cache_size(), 1u);
  // A policy update published by ANOTHER path (directly to the group)
  // still evicts this cache through the push channel.
  ASSERT_TRUE(fab.group->UpdateRules("doc", RulesBlobFor(2)).ok());
  EXPECT_EQ(cached.cache_size(), 0u);
  EXPECT_EQ(cached.fanout_invalidations(), 1u);
  EXPECT_EQ(fanout.delivered(), 2u);  // the publish and the update
  auto open = cached.OpenDocument("doc");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().rules_version, 2u);
}

TEST(InvalidationFanoutTest, LostNotificationsCostFreshnessNotCorrectness) {
  Fabric fab;
  dsp::CachingClient cached(fab.group.get());
  dissem::InvalidationFanout fanout;
  const size_t sub = fanout.Subscribe(
      [&cached](const std::string& doc_id, uint64_t version) {
        cached.Invalidate(doc_id, version);
      });
  fab.group->set_on_write_committed(
      [&fanout](const std::string& doc_id, uint64_t version) {
        fanout.Publish(doc_id, version);
      });

  ASSERT_TRUE(cached.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  ASSERT_TRUE(cached.OpenDocument("doc").ok());
  // Partition the subscriber: the next update's notification is lost.
  fanout.set_partitioned(sub, true);
  ASSERT_TRUE(fab.group->UpdateRules("doc", RulesBlobFor(2)).ok());
  EXPECT_EQ(cached.cache_size(), 1u);  // push missed it...
  // ...but the pull path revalidates: the very next open serves v2.
  auto open = cached.OpenDocument("doc");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open.value().rules_version, 2u);
  EXPECT_GE(cached.invalidations(), 1u);
  EXPECT_EQ(fanout.partitioned(), 1u);
}

// --- Dispatcher under backend errors ----------------------------------------

TEST(AsyncDispatcherTest, BackendErrorsDoNotStallTheLane) {
  dsp::DspServer store;
  ASSERT_TRUE(store.Publish("doc", MakeContainer(1), RulesBlobFor(1)).ok());
  dsp::FaultOptions fopt;
  // Every third request from index 1 fails — interleaved with successes
  // on the same document, i.e. the same FIFO lane.
  fopt.schedule.push_back({1, 2, dsp::FaultKind::kCrash});
  fopt.schedule.push_back({4, 5, dsp::FaultKind::kCrash});
  dsp::FaultInjectingService faulty(&store, fopt);
  dsp::AsyncDispatcher::Options dopt;
  dopt.workers = 2;
  dsp::AsyncDispatcher dispatcher(&faulty, dopt);

  std::vector<std::future<Result<dsp::Response>>> futures;
  for (int i = 0; i < 8; ++i) {
    dsp::Request req;
    req.op = dsp::Op::kOpenDocument;
    req.doc_id = "doc";
    futures.push_back(dispatcher.Submit(std::move(req)));
  }
  size_t ok = 0, io = 0;
  for (auto& f : futures) {
    auto res = f.get();  // every future resolves
    if (res.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(res.status().code(), StatusCode::kIoError);
      ++io;
    }
  }
  EXPECT_EQ(ok, 6u);
  EXPECT_EQ(io, 2u);
  EXPECT_EQ(dispatcher.executed(), 8u);
  // Errors are still served work: the lane clock charged them.
  EXPECT_GT(dispatcher.modeled_busy_seconds(), 0.0);
}

TEST(AsyncDispatcherTest, DrainOnDestroyResolvesFuturesAgainstADeadBackend) {
  dsp::DspServer store;
  dsp::FaultInjectingService faulty(&store);
  faulty.set_crashed(true);
  std::vector<std::future<Result<dsp::Response>>> futures;
  {
    dsp::AsyncDispatcher dispatcher(&faulty);
    for (int i = 0; i < 6; ++i) {
      dsp::Request req;
      req.op = dsp::Op::kOpenDocument;
      req.doc_id = "doc-" + std::to_string(i);
      futures.push_back(dispatcher.Submit(std::move(req)));
    }
  }  // destructor drains: queued requests execute, none abandoned
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status().code(), StatusCode::kIoError);
  }
}

// --- Full stack under a scripted fault schedule ------------------------------

TEST(FaultLoadTest, ScriptedCrashAndPartitionCompleteWithZeroFailures) {
  workload::LoadOptions opt;
  opt.sessions = 6;
  opt.ops_per_session = 6;
  opt.shards = 2;
  opt.workers = 2;
  opt.documents = 3;
  opt.elements_per_doc = 60;
  opt.seed = 42;
  opt.replicas = 3;
  opt.faults.enabled = true;
  // Crash and partition windows deliberately do NOT overlap: with a 2/3
  // quorum, losing both backups at once would (correctly) fail writes.
  opt.faults.crash_replica = 1;
  opt.faults.crash_at_op = 4;
  opt.faults.crash_heal_at_op = 12;
  opt.faults.partition_replica = 2;
  opt.faults.partition_at_op = 15;
  opt.faults.partition_heal_at_op = 26;
  // Sprinkled lost responses exercise the client retry loop end to end
  // (the all-suspect moment is what pumps heartbeats from backoff). While
  // the crash window leaves a single live backup, ONE timed-out ack fails
  // the quorum — a deep retry budget keeps that latency, not failure.
  opt.faults.timeout_probability = 0.08;
  opt.retry_attempts = 8;

  workload::LoadReport report = workload::RunLoad(opt);
  // The acceptance bar: turbulence below, calm above.
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stale_reads_served, 0u);
  EXPECT_EQ(report.retry_exhausted, 0u);
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.faults_injected, 0u);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GE(report.reintegrations, 1u);  // both faults healed mid-run
  EXPECT_GT(report.heartbeats, 0u);
  EXPECT_GT(report.throughput_ops_per_sec, 0.0);
  EXPECT_EQ(report.replicas, 3u);
}

TEST(FaultLoadTest, DroppedNotificationsSelfHeal) {
  workload::LoadOptions opt;
  opt.sessions = 4;
  opt.ops_per_session = 4;
  opt.shards = 2;
  opt.workers = 2;
  opt.documents = 2;
  opt.elements_per_doc = 60;
  opt.seed = 7;
  opt.replicas = 2;
  opt.update_fraction = 0.4;  // plenty of fan-out traffic
  opt.faults.enabled = true;
  opt.faults.crash_replica = opt.replicas;  // out of range: no crash
  opt.faults.partition_replica = opt.replicas;
  opt.faults.notify_drop_probability = 0.5;

  workload::LoadReport report = workload::RunLoad(opt);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stale_reads_served, 0u);
  EXPECT_GT(report.updates + report.publishes, 0u);
  EXPECT_GT(report.notifications_dropped, 0u);  // p=0.5 over many commits
}

}  // namespace
}  // namespace csxa
