// Property suite for the parameterized scenario generator: randomized
// ScenarioSpecs must build (a) seed-stably — equal spec + seed means a
// byte-identical scenario — and (b) soundly: every generated document ×
// rule-set × query triple must survive the repo's strongest oracles (the
// skip-on/skip-off encode→decode→RunFiltered differential against the DOM
// reference view, and fetch-plan exactness over the sealed container).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "core/rule.h"
#include "crypto/container.h"
#include "scengen/spec.h"
#include "skipindex/byte_source.h"
#include "skipindex/codec.h"
#include "skipindex/filter.h"
#include "soe/chunk_source.h"
#include "soe/prefetch.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

// Same reproduction contract as core_oracle_property_test: default runs
// are fully deterministic; CSXA_SEED_OFFSET shifts every seed, and the
// effective seed is attached to each failure.
uint64_t SeedOffset() {
  static const uint64_t offset = [] {
    const char* v = std::getenv("CSXA_SEED_OFFSET");
    return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                        : 0ull;
  }();
  return offset;
}

// A random point of the spec space: profile, document shape, rule shape,
// query mix and churn all vary. Deterministic in `seed`.
scengen::ScenarioSpec RandomSpec(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  scengen::ScenarioSpec s;
  s.name = "prop" + std::to_string(seed);
  s.seed = seed * 31 + 7;
  s.documents = 1 + rng.Uniform(3);
  static const xml::DocProfile kProfiles[] = {
      xml::DocProfile::kAgenda, xml::DocProfile::kHospital,
      xml::DocProfile::kNewsFeed, xml::DocProfile::kRandom,
      xml::DocProfile::kIoT};
  s.doc.profile = kProfiles[rng.Uniform(5)];
  s.doc.elements = 20 + rng.Uniform(100);
  s.doc.text_avg_len = 8 + rng.Uniform(24);
  s.doc.max_depth = 4 + static_cast<int>(rng.Uniform(5));
  s.doc.fan_out = rng.Uniform(7);        // 0 keeps the profile default
  s.doc.folder_depth = rng.Uniform(4);   // deep folders on kHospital
  s.doc.text_prob = 0.3 + 0.5 * rng.NextDouble();
  s.rules.subjects = 1 + rng.Uniform(4);
  s.rules.rules_per_subject = 1 + rng.Uniform(6);
  s.rules.negative_ratio = 0.2 + 0.4 * rng.NextDouble();
  s.rules.predicate_prob = 0.5 * rng.NextDouble();
  s.rules.descendant_prob = 0.2 + 0.5 * rng.NextDouble();
  s.rules.wildcard_prob = 0.2 * rng.NextDouble();
  s.rules.junk_tag_prob = 0.1 * rng.NextDouble();
  s.rules.max_steps = 2 + rng.Uniform(3);
  s.queries.generated = 1 + rng.Uniform(3);
  s.queries.predicate_prob = 0.5 * rng.NextDouble();
  s.churn.update_fraction = 0.5 * rng.NextDouble();
  s.churn.publish_fraction = 0.3 * rng.NextDouble();
  s.churn.subject_churn = rng.NextDouble();
  return s;
}

std::set<std::string> MobileSubjects(const std::string& rules_text) {
  auto set = core::RuleSet::ParseText(rules_text);
  EXPECT_TRUE(set.ok()) << rules_text;
  std::set<std::string> out;
  if (!set.ok()) return out;
  for (const std::string& s : set.value().Subjects()) {
    if (!s.empty() && s[0] == 'm') out.insert(s);
  }
  return out;
}

TEST(ScenGenSeedStability, EqualSpecBuildsByteIdenticalScenario) {
  for (int iter = 0; iter < 8; ++iter) {
    const uint64_t seed = 21000 + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) + ")");
    const scengen::ScenarioSpec spec = RandomSpec(seed);
    const scengen::GeneratedScenario a = scengen::BuildScenario(spec);
    const scengen::GeneratedScenario b = scengen::BuildScenario(spec);

    // The headline contract: equal spec + seed ⇒ byte-identical scenario
    // (documents, rule revisions, subjects, queries — everything).
    ASSERT_EQ(a.Fingerprint(), b.Fingerprint());

    ASSERT_EQ(a.docs.size(), spec.documents);
    ASSERT_FALSE(a.queries.empty());
    for (const scengen::ScenarioDoc& doc : a.docs) {
      // Every rule revision parses, revision 0 is the doc's own text, and
      // the query-safe subjects appear in every revision.
      EXPECT_EQ(a.RulesRevision(doc.index, 0), doc.rules_text);
      ASSERT_FALSE(doc.subjects.empty());
      for (uint64_t rev = 0; rev < 3; ++rev) {
        auto rules = core::RuleSet::ParseText(a.RulesRevision(doc.index, rev));
        ASSERT_TRUE(rules.ok()) << "doc=" << doc.doc_id << " rev=" << rev;
        std::vector<std::string> subjects = rules.value().Subjects();
        for (const std::string& s : doc.subjects) {
          EXPECT_NE(std::find(subjects.begin(), subjects.end(), s),
                    subjects.end())
              << "stable subject " << s << " missing from doc=" << doc.doc_id
              << " rev=" << rev;
        }
      }
      // Re-minting any fleet document reproduces it exactly.
      scengen::ScenarioDoc again = a.MakeDoc(doc.index);
      EXPECT_EQ(again.doc_id, doc.doc_id);
      EXPECT_EQ(again.rules_text, doc.rules_text);
      EXPECT_EQ(again.subjects, doc.subjects);
      EXPECT_EQ(a.Materialize(again).Serialize(),
                a.Materialize(doc).Serialize());
    }

    // Subject churn actually churns: with a nonzero mobile window the
    // subscriber set slides between consecutive revisions.
    std::set<std::string> m0 = MobileSubjects(a.RulesRevision(0, 0));
    std::set<std::string> m1 = MobileSubjects(a.RulesRevision(0, 1));
    if (!m0.empty()) {
      EXPECT_NE(m0, m1);
    }

    // And the seed is load-bearing: a different seed is a different
    // scenario.
    scengen::ScenarioSpec other = spec;
    other.seed += 1;
    EXPECT_NE(scengen::BuildScenario(other).Fingerprint(), a.Fingerprint());
  }
}

// --- Skip-on/skip-off differential over generated scenarios ---------------

struct FilteredRun {
  std::string view;
  core::EvaluatorStats stats;
};

FilteredRun RunFilteredView(Span encoded,
                            const std::vector<core::AccessRule>& rules,
                            bool enable_skip, Status* status_out) {
  FilteredRun out;
  skipindex::MemorySource source(encoded);
  auto dec = skipindex::DocumentDecoder::Open(&source);
  if (!dec.ok()) {
    *status_out = dec.status();
    return out;
  }
  xml::CanonicalWriter writer;
  auto ev = core::StreamingEvaluator::Create(rules, nullptr, &writer);
  if (!ev.ok()) {
    *status_out = ev.status();
    return out;
  }
  skipindex::FilterOptions fopts;
  fopts.enable_skip = enable_skip;
  *status_out =
      skipindex::RunFiltered(dec.value().get(), ev.value().get(), fopts,
                             nullptr);
  out.view = writer.str();
  out.stats = ev.value()->stats();
  return out;
}

TEST(ScenGenOracle, SkipDifferentialOverSpecDocuments) {
  for (int iter = 0; iter < 6; ++iter) {
    const uint64_t seed = 22000 + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) + ")");
    const scengen::GeneratedScenario gen =
        scengen::BuildScenario(RandomSpec(seed));
    const size_t probe_docs = std::min<size_t>(gen.docs.size(), 2);
    for (size_t d = 0; d < probe_docs; ++d) {
      const scengen::ScenarioDoc& sd = gen.docs[d];
      xml::DomDocument doc = gen.Materialize(sd);
      ASSERT_NE(doc.root(), nullptr);
      auto rules = core::RuleSet::ParseText(sd.rules_text);
      ASSERT_TRUE(rules.ok());
      auto encoded = skipindex::EncodeDocument(doc, {});
      ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();

      for (const std::string& subject : sd.subjects) {
        SCOPED_TRACE("doc=" + sd.doc_id + " subject=" + subject);
        std::vector<core::AccessRule> subject_rules =
            rules.value().ForSubject(subject);
        Status st = Status::OK();
        FilteredRun with_skip =
            RunFilteredView(Span(encoded.value()), subject_rules, true, &st);
        ASSERT_TRUE(st.ok()) << st.ToString();
        FilteredRun no_skip =
            RunFilteredView(Span(encoded.value()), subject_rules, false, &st);
        ASSERT_TRUE(st.ok()) << st.ToString();

        auto ref = core::BuildAuthorizedView(doc, subject_rules, nullptr);
        ASSERT_TRUE(ref.ok()) << ref.status().ToString();
        const std::string expected = ref.value().Serialize();
        EXPECT_EQ(with_skip.view, expected)
            << "rules:\n" << rules.value().ToText();
        EXPECT_EQ(no_skip.view, expected);
        // Skips change what is examined, never what is delivered.
        EXPECT_EQ(with_skip.stats.nodes_permitted,
                  no_skip.stats.nodes_permitted);
        EXPECT_LE(with_skip.stats.nodes_denied, no_skip.stats.nodes_denied);
      }
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// --- Fetch-plan exactness over generated scenarios -------------------------

TEST(ScenGenOracle, FetchPlanSoundOverSpecDocuments) {
  for (int iter = 0; iter < 6; ++iter) {
    const uint64_t seed = 23000 + SeedOffset() + static_cast<uint64_t>(iter);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " (CSXA_SEED_OFFSET=" + std::to_string(SeedOffset()) + ")");
    const scengen::GeneratedScenario gen =
        scengen::BuildScenario(RandomSpec(seed));
    const scengen::ScenarioDoc& sd = gen.docs[0];
    xml::DomDocument doc = gen.Materialize(sd);
    ASSERT_NE(doc.root(), nullptr);
    auto rules = core::RuleSet::ParseText(sd.rules_text);
    ASSERT_TRUE(rules.ok());
    std::vector<core::AccessRule> subject_rules =
        rules.value().ForSubject(sd.subjects[0]);

    // Query the scenario's own mix (parse the first entry; the generator
    // guarantees it parses).
    xpath::PathExpr qexpr;
    const xpath::PathExpr* qptr = nullptr;
    if (iter % 2 == 0) {
      auto q = xpath::ParsePath(gen.queries[0].second);
      ASSERT_TRUE(q.ok()) << gen.queries[0].second;
      qexpr = std::move(q).value();
      qptr = &qexpr;
    }
    const uint32_t chunk_size = (iter % 3 == 0) ? 64 : 256;

    auto encoded = skipindex::EncodeDocument(doc, {});
    ASSERT_TRUE(encoded.ok());
    auto plan = soe::ComputeFetchPlan(Span(encoded.value()), chunk_size,
                                      subject_rules, qptr, true);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // Ground truth: the sealed-container scan with every fetch recorded.
    Rng rng(seed * 5227 + 29);
    auto key = crypto::SymmetricKey::Generate(&rng);
    Bytes sealed =
        crypto::SecureContainer::Seal(key, encoded.value(), chunk_size, &rng);
    auto container = crypto::SecureContainer::Parse(sealed);
    ASSERT_TRUE(container.ok());
    soe::ContainerChunkProvider backend(&container.value());
    soe::RecordingProvider recorder(&backend);
    soe::ChunkSource source(key, container.value().header(), &recorder,
                            nullptr);
    auto dec = skipindex::DocumentDecoder::Open(&source);
    ASSERT_TRUE(dec.ok()) << dec.status().ToString();
    xml::CanonicalWriter writer;
    auto ev = core::StreamingEvaluator::Create(subject_rules, qptr, &writer);
    ASSERT_TRUE(ev.ok());
    skipindex::FilterOptions fopts;
    fopts.enable_skip = true;
    Status st = skipindex::RunFiltered(dec.value().get(), ev.value().get(),
                                       fopts, nullptr);
    ASSERT_TRUE(st.ok()) << st.ToString();

    std::set<uint32_t> fetched(recorder.requested().begin(),
                               recorder.requested().end());
    std::set<uint32_t> planned;
    for (const skipindex::ChunkRun& r : plan.value().runs) {
      for (uint32_t i = 0; i < r.count; ++i) planned.insert(r.first + i);
    }
    for (uint32_t c : fetched) {
      EXPECT_TRUE(plan.value().Covers(c))
          << "fetched chunk " << c << " not in plan";
    }
    EXPECT_EQ(planned, fetched) << "doc=" << sd.doc_id;

    auto ref = core::BuildAuthorizedView(doc, subject_rules, qptr);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(writer.str(), ref.value().Serialize());
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace csxa
