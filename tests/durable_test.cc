// Durability suite for the disk-backed DSP (`ctest -L durable`;
// scripts/ci.sh also runs it under Thread- and AddressSanitizer).
//
// What is pinned here:
//  - DurableServer round-trips the full Service contract through the
//    sealed block layer and survives close/reopen with versions intact;
//  - the crash-point matrix: for EVERY disk write point of publish,
//    republish, rules-update and remove, killing the "process" at that
//    point and reopening recovers to exactly the pre-op or the post-op
//    state — never a torn in-between, never a lost earlier commit;
//  - torn tails (partial trailing frames from an interrupted append) are
//    truncated silently; interior manifest damage — which no crash can
//    produce — fails the open with kIntegrityError;
//  - at-rest corruption (bit flips, block swaps, cross-store transplants)
//    quarantines exactly the damaged documents with typed errors, every
//    healthy document keeps serving, and republishing heals;
//  - warm opens (clean-shutdown marker present) verify lazily, cold opens
//    eagerly;
//  - the whole decorator stack — retry, cache, dispatcher, replica group,
//    sharding — runs over durable shards through workload::RunLoad under
//    a scripted crash + partition with zero failures and zero stale
//    reads, and the heartbeat cadence ticks on the modeled clock even
//    when nothing ever backs off.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "crypto/blockseal.h"
#include "crypto/container.h"
#include "dsp/blockfile.h"
#include "dsp/durable.h"
#include "dsp/service.h"
#include "workload/load.h"

namespace csxa {
namespace {

Bytes RulesBlobFor(uint64_t version) {
  return Bytes(24, static_cast<uint8_t>(version & 0xFF));
}

Bytes MakeContainer(uint64_t seed, size_t payload_bytes = 600) {
  Rng rng(seed);
  auto key = crypto::SymmetricKey::Generate(&rng);
  return crypto::SecureContainer::Seal(
      key, Bytes(payload_bytes, static_cast<uint8_t>(seed)), 256, &rng);
}

dsp::DurableOptions OptionsOn(dsp::Env* env, const std::string& store_id) {
  dsp::DurableOptions options;
  options.directory = "store";
  options.store_id = store_id;
  Rng rng(42);
  options.key = crypto::SymmetricKey::Generate(&rng);
  options.env = env;
  return options;
}

std::unique_ptr<dsp::DurableServer> MustOpen(dsp::Env* env,
                                             const std::string& id = "t") {
  auto opened = dsp::DurableServer::Open(OptionsOn(env, id));
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  return std::move(opened).value();
}

// --- Basic durability --------------------------------------------------------

TEST(DurableServerTest, RoundTripSurvivesReopen) {
  dsp::MemEnv env;
  Bytes container_a = MakeContainer(1);
  Bytes container_b = MakeContainer(2, 5000);  // spans several blocks
  {
    auto server = MustOpen(&env);
    ASSERT_TRUE(server->Publish("a", container_a, RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Publish("b", container_b, RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->UpdateRules("a", RulesBlobFor(2)).ok());
    ASSERT_TRUE(server->Close().ok());
  }
  auto server = MustOpen(&env);
  EXPECT_TRUE(server->recovery().clean_shutdown);
  EXPECT_EQ(server->size(), 2u);

  auto got_b = server->GetContainer("b");
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(got_b.value(), container_b);

  auto open_a = server->OpenDocument("a");
  ASSERT_TRUE(open_a.ok());
  EXPECT_EQ(open_a.value().rules_version, 2u);
  EXPECT_EQ(open_a.value().sealed_rules, RulesBlobFor(2));
  // Revalidation against the current version elides the bodies.
  auto reval = server->OpenDocument("a", 2);
  ASSERT_TRUE(reval.ok());
  EXPECT_TRUE(reval.value().not_modified);
}

TEST(DurableServerTest, RemoveTombstoneKeepsRepublishMonotone) {
  dsp::MemEnv env;
  {
    auto server = MustOpen(&env);
    ASSERT_TRUE(server->Publish("a", MakeContainer(1), RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->UpdateRules("a", RulesBlobFor(2)).ok());  // v2
    ASSERT_TRUE(server->Remove("a").ok());
    EXPECT_EQ(server->GetContainer("a").status().code(),
              StatusCode::kNotFound);
  }
  // The tombstone is durable: a republish after reopen must still exceed
  // the removed document's last served version.
  auto server = MustOpen(&env);
  EXPECT_EQ(server->size(), 0u);
  auto open = server->Publish("a", MakeContainer(3), RulesBlobFor(3));
  ASSERT_TRUE(open.ok());
  auto reopened = server->OpenDocument("a");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value().rules_version, 3u);  // v2 tombstone + 1
}

TEST(DurableServerTest, MultiSpanGetChunksServesSpansInRequestOrder) {
  // The durable read path (chunk slicing out of sealed blocks) must honor
  // the same multi-span contract as the in-memory store: flattened span
  // order, out-of-order and overlapping spans included, empty spans
  // skipped, any past-EOF span failing the whole request — one request
  // regardless of span count. Real clients only ever sent one span per
  // request before the fetch planner; this pins the many-span path.
  dsp::MemEnv env;
  Rng rng(9);
  auto key = crypto::SymmetricKey::Generate(&rng);
  Bytes payload(2500);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i * 7 & 0xFF);
  }
  Bytes container = crypto::SecureContainer::Seal(key, payload, 256, &rng);
  {
    auto server = MustOpen(&env);
    ASSERT_TRUE(server->Publish("m", container, RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Close().ok());
  }
  auto server = MustOpen(&env);  // serve from disk, not the publish cache

  std::vector<soe::ChunkData> reference;  // 10 chunks of 256 (last short)
  for (uint32_t i = 0; i < 10; ++i) {
    auto one = server->GetChunks("m", {dsp::ChunkSpan{i, 1}});
    ASSERT_TRUE(one.ok()) << i;
    reference.push_back(std::move(one.value()[0]));
  }

  uint64_t requests_before = server->stats().requests;
  auto got = server->GetChunks(
      "m", {dsp::ChunkSpan{6, 3}, dsp::ChunkSpan{0, 2}, dsp::ChunkSpan{3, 0},
            dsp::ChunkSpan{1, 2}, dsp::ChunkSpan{9, 1}});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(server->stats().requests, requests_before + 1);
  const std::vector<uint32_t> expect = {6, 7, 8, 0, 1, 1, 2, 9};
  ASSERT_EQ(got.value().size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(got.value()[i].ciphertext, reference[expect[i]].ciphertext) << i;
    EXPECT_EQ(got.value()[i].auth.mac, reference[expect[i]].auth.mac) << i;
  }

  EXPECT_FALSE(
      server->GetChunks("m", {dsp::ChunkSpan{0, 1}, dsp::ChunkSpan{9, 2}})
          .ok());
  auto none =
      server->GetChunks("m", {dsp::ChunkSpan{0, 0}, dsp::ChunkSpan{5, 0}});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

// --- The crash-point matrix --------------------------------------------------

// One rig: a durable store on a fault-wrapped in-RAM disk, pre-seeded
// with documents "a" (version 1) and "b".
struct CrashRig {
  dsp::MemEnv mem;
  dsp::FaultyEnv faulty{&mem};
  std::unique_ptr<dsp::DurableServer> server;
  Bytes container_a = MakeContainer(11, 3000);
  Bytes container_b = MakeContainer(12);

  CrashRig() {
    server = MustOpen(&faulty, "rig");
    EXPECT_TRUE(server->Publish("a", container_a, RulesBlobFor(1)).ok());
    EXPECT_TRUE(server->Publish("b", container_b, RulesBlobFor(1)).ok());
  }

  // Simulated reboot: drop the crashed process, revive the disk, reopen.
  dsp::RecoveryReport Reboot() {
    server.reset();
    faulty.Revive();
    server = MustOpen(&faulty, "rig");
    return server->recovery();
  }
};

// Counts the disk write points one `op` makes on a freshly seeded rig.
template <typename OpFn>
uint64_t WritePointsOf(OpFn op) {
  CrashRig rig;
  const uint64_t before = rig.faulty.write_points();
  EXPECT_TRUE(op(rig).ok());
  return rig.faulty.write_points() - before;
}

// Runs `op` with a crash armed at every write point k in [0, W) — with
// and without a torn tail on the dying append — and checks the reopened
// store against `pre_ok` / `post_ok` (exactly one must hold).
template <typename OpFn, typename PreFn, typename PostFn>
void RunCrashMatrix(OpFn op, PreFn pre_ok, PostFn post_ok) {
  const uint64_t write_points = WritePointsOf(op);
  ASSERT_GT(write_points, 0u);
  for (uint64_t k = 0; k < write_points; ++k) {
    for (size_t torn : {size_t{0}, size_t{97}}) {
      SCOPED_TRACE("crash at write point " + std::to_string(k) + ", torn " +
                   std::to_string(torn));
      CrashRig rig;
      rig.faulty.ArmCrash(k, torn);
      EXPECT_FALSE(op(rig).ok());  // the op dies with the disk
      dsp::RecoveryReport report = rig.Reboot();
      EXPECT_TRUE(report.quarantined.empty());
      // Both pre-seeded commits always survive.
      auto got_b = rig.server->GetContainer("b");
      ASSERT_TRUE(got_b.ok());
      EXPECT_EQ(got_b.value(), rig.container_b);
      const bool pre = pre_ok(rig);
      const bool post = post_ok(rig);
      EXPECT_TRUE(pre != post)
          << "recovered to neither (or both of) pre-op and post-op state";
    }
  }
}

TEST(DurableCrashMatrixTest, PublishNewDocument) {
  Bytes container_c = MakeContainer(13, 2500);
  auto op = [&](CrashRig& rig) {
    return rig.server->Publish("c", container_c, RulesBlobFor(1));
  };
  RunCrashMatrix(
      op,
      [&](CrashRig& rig) {
        return rig.server->GetContainer("c").status().code() ==
               StatusCode::kNotFound;
      },
      [&](CrashRig& rig) {
        auto got = rig.server->GetContainer("c");
        return got.ok() && got.value() == container_c;
      });
}

TEST(DurableCrashMatrixTest, RepublishExistingDocument) {
  Bytes container_new = MakeContainer(14, 4500);
  auto op = [&](CrashRig& rig) {
    return rig.server->Publish("a", container_new, RulesBlobFor(2));
  };
  RunCrashMatrix(
      op,
      [&](CrashRig& rig) {
        auto open = rig.server->OpenDocument("a");
        auto got = rig.server->GetContainer("a");
        return open.ok() && open.value().rules_version == 1 && got.ok() &&
               got.value() == rig.container_a;
      },
      [&](CrashRig& rig) {
        auto open = rig.server->OpenDocument("a");
        auto got = rig.server->GetContainer("a");
        return open.ok() && open.value().rules_version == 2 && got.ok() &&
               got.value() == container_new;
      });
}

TEST(DurableCrashMatrixTest, UpdateRules) {
  auto op = [&](CrashRig& rig) {
    return rig.server->UpdateRules("a", RulesBlobFor(2));
  };
  auto with_version = [](CrashRig& rig, uint64_t version) {
    auto open = rig.server->OpenDocument("a");
    return open.ok() && open.value().rules_version == version &&
           open.value().sealed_rules == RulesBlobFor(version);
  };
  RunCrashMatrix(
      op, [&](CrashRig& rig) { return with_version(rig, 1); },
      [&](CrashRig& rig) { return with_version(rig, 2); });
}

TEST(DurableCrashMatrixTest, RemoveDocument) {
  auto op = [&](CrashRig& rig) { return rig.server->Remove("a"); };
  RunCrashMatrix(
      op,
      [&](CrashRig& rig) {
        auto got = rig.server->GetContainer("a");
        return got.ok() && got.value() == rig.container_a;
      },
      [&](CrashRig& rig) {
        return rig.server->GetContainer("a").status().code() ==
               StatusCode::kNotFound;
      });
}

// --- At-rest corruption ------------------------------------------------------

TEST(DurableCorruptionTest, DataBitFlipQuarantinesOnlyTheDamagedDocument) {
  dsp::MemEnv mem;
  Bytes container_a = MakeContainer(21);
  Bytes container_b = MakeContainer(22);
  {
    auto server = MustOpen(&mem);
    ASSERT_TRUE(server->Publish("a", container_a, RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Publish("b", container_b, RulesBlobFor(1)).ok());
  }
  // Document "a" owns the first blocks of the first segment; flip one bit
  // in its ciphertext while the process is away.
  dsp::DiskFaultPlan plan;
  plan.bit_flips.push_back({"data-000000", 200, 0x10});
  dsp::FaultyEnv faulty(&mem, plan);
  auto server = MustOpen(&faulty);
  ASSERT_EQ(server->recovery().quarantined,
            std::vector<std::string>{"a"});

  auto got_a = server->GetContainer("a");
  EXPECT_EQ(got_a.status().code(), StatusCode::kIntegrityError);
  auto got_b = server->GetContainer("b");
  ASSERT_TRUE(got_b.ok());
  EXPECT_EQ(got_b.value(), container_b);

  // Republishing the id heals the quarantine.
  Bytes container_a2 = MakeContainer(23);
  ASSERT_TRUE(server->Publish("a", container_a2, RulesBlobFor(2)).ok());
  EXPECT_TRUE(server->quarantined().empty());
  auto healed = server->GetContainer("a");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value(), container_a2);
}

TEST(DurableCorruptionTest, BlockSwapIsDetectedAsRelocation) {
  dsp::MemEnv mem;
  {
    auto server = MustOpen(&mem);
    // Two documents, each one block, adjacent in the segment.
    ASSERT_TRUE(server->Publish("a", MakeContainer(31), RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Publish("b", MakeContainer(32), RulesBlobFor(1)).ok());
  }
  // Swap blocks 0 and 1: both untouched byte-for-byte, both relocated.
  auto file = std::move(mem.Open("store/data-000000.seg", false)).value();
  Bytes block0 = std::move(file->ReadAt(0, crypto::kSealedBlockSize)).value();
  Bytes block1 = std::move(
      file->ReadAt(crypto::kSealedBlockSize, crypto::kSealedBlockSize))
      .value();
  ASSERT_TRUE(file->WriteAt(0, block1).ok());
  ASSERT_TRUE(file->WriteAt(crypto::kSealedBlockSize, block0).ok());

  auto server = MustOpen(&mem);
  EXPECT_EQ(server->recovery().quarantined.size(), 2u);
  EXPECT_EQ(server->GetContainer("a").status().code(),
            StatusCode::kIntegrityError);
  EXPECT_EQ(server->GetContainer("b").status().code(),
            StatusCode::kIntegrityError);
}

TEST(DurableCorruptionTest, CrossStoreTransplantIsDetected) {
  // Two stores under the SAME key but different identities: a block
  // copied between them is authentic bytes in the wrong store.
  dsp::MemEnv mem;
  dsp::DurableOptions opt1 = OptionsOn(&mem, "alpha");
  opt1.directory = "alpha";
  dsp::DurableOptions opt2 = OptionsOn(&mem, "beta");
  opt2.directory = "beta";
  {
    auto s1 = std::move(dsp::DurableServer::Open(opt1)).value();
    auto s2 = std::move(dsp::DurableServer::Open(opt2)).value();
    ASSERT_TRUE(s1->Publish("doc", MakeContainer(41), RulesBlobFor(1)).ok());
    ASSERT_TRUE(s2->Publish("doc", MakeContainer(42), RulesBlobFor(1)).ok());
  }
  auto from = std::move(mem.Open("alpha/data-000000.seg", false)).value();
  auto to = std::move(mem.Open("beta/data-000000.seg", false)).value();
  Bytes block = std::move(from->ReadAt(0, crypto::kSealedBlockSize)).value();
  ASSERT_TRUE(to->WriteAt(0, block).ok());

  auto s2 = std::move(dsp::DurableServer::Open(opt2)).value();
  EXPECT_EQ(s2->recovery().quarantined, std::vector<std::string>{"doc"});
  EXPECT_EQ(s2->GetContainer("doc").status().code(),
            StatusCode::kIntegrityError);
}

TEST(DurableCorruptionTest, InteriorManifestTamperFailsOpen) {
  dsp::MemEnv mem;
  {
    auto server = MustOpen(&mem);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(server
                      ->Publish("doc-" + std::to_string(i),
                                MakeContainer(50 + i), RulesBlobFor(1))
                      .ok());
    }
  }
  // Damage record 1 of 4: valid records follow it, so this cannot be a
  // torn tail — the open must refuse, not silently drop history.
  dsp::DiskFaultPlan plan;
  plan.bit_flips.push_back({"MANIFEST", dsp::kManifestRecordSize + 60, 0x01});
  dsp::FaultyEnv faulty(&mem, plan);
  auto opened = dsp::DurableServer::Open(OptionsOn(&faulty, "t"));
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityError);
}

TEST(DurableCorruptionTest, TrailingManifestDamageIsATornTail) {
  dsp::MemEnv mem;
  Bytes container_a = MakeContainer(61);
  {
    auto server = MustOpen(&mem);
    ASSERT_TRUE(server->Publish("a", container_a, RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Publish("b", MakeContainer(62), RulesBlobFor(1)).ok());
  }
  // Damage the FINAL record: indistinguishable from a torn commit append,
  // so the store reopens minus that last op.
  dsp::DiskFaultPlan plan;
  plan.bit_flips.push_back({"MANIFEST", dsp::kManifestRecordSize + 60, 0x01});
  dsp::FaultyEnv faulty(&mem, plan);
  auto server = MustOpen(&faulty);
  EXPECT_EQ(server->recovery().torn_tail_records, 1u);
  // ...but NOT silently: a whole trailing frame failing authentication is
  // also what an attacker rolling back the last committed record leaves.
  EXPECT_TRUE(server->recovery().rollback_suspected);
  EXPECT_GT(server->recovery().orphaned_blocks_gced, 0u);  // b's blocks
  EXPECT_EQ(server->GetContainer("b").status().code(), StatusCode::kNotFound);
  auto got_a = server->GetContainer("a");
  ASSERT_TRUE(got_a.ok());
  EXPECT_EQ(got_a.value(), container_a);
}

TEST(DurableCorruptionTest, CommitSeqAnchorDetectsOneRecordRollback) {
  dsp::MemEnv mem;
  uint64_t commit_seq = 0;
  {
    auto server = MustOpen(&mem);
    ASSERT_TRUE(server->Publish("a", MakeContainer(65), RulesBlobFor(1)).ok());
    dsp::Request req;
    req.op = dsp::Op::kPublish;
    req.doc_id = "b";
    req.container = MakeContainer(66);
    req.sealed_rules = RulesBlobFor(1);
    auto last = server->Execute(std::move(req));
    ASSERT_TRUE(last.ok());
    // The durable backend returns its manifest length as a commitment.
    commit_seq = last.value().commit_seq;
    ASSERT_GT(commit_seq, 0u);
  }
  // Honest volume: opening with the anchor succeeds (later opens may have
  // MORE records — the anchor is a floor, not an exact count).
  {
    dsp::DurableOptions options = OptionsOn(&mem, "t");
    options.expected_manifest_records = commit_seq;
    ASSERT_TRUE(dsp::DurableServer::Open(options).ok());
  }
  // Hostile volume: one flipped bit in the LAST committed record reads as
  // a torn crash tail to an unanchored open — but against the publisher's
  // commitment the rollback is detected and the open refuses.
  dsp::DiskFaultPlan plan;
  plan.bit_flips.push_back({"MANIFEST", dsp::kManifestRecordSize + 60, 0x01});
  dsp::FaultyEnv faulty(&mem, plan);
  dsp::DurableOptions options = OptionsOn(&faulty, "t");
  options.expected_manifest_records = commit_seq;
  auto opened = dsp::DurableServer::Open(options);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kIntegrityError);
}

TEST(DurableCrashSafetyTest, RecoveredRetryNeverReusesACtrNonce) {
  // The two-time-pad hazard: crash after the data blocks of a publish are
  // durable but before its commit record. Recovery GCs the orphans and the
  // retried publish reuses the SAME block indices for different plaintext
  // — so the sealed bytes (nonce prologue included) must differ from what
  // an attacker imaged off the volume before the crash.
  CrashRig rig;
  const std::string segment = "store/data-000000.seg";
  // Arm the crash on the manifest commit append: data blocks are already
  // fsynced when it fires. Write points of a publish: N block appends,
  // 1 data sync, then the manifest append dies.
  Bytes container_c = MakeContainer(15, 2500);
  auto probe = [&](CrashRig& r) {
    return r.server->Publish("c", container_c, RulesBlobFor(1));
  };
  const uint64_t write_points = WritePointsOf(probe);
  rig.faulty.ArmCrash(write_points - 2);  // the manifest append
  EXPECT_FALSE(probe(rig).ok());

  // Image the orphaned tail before recovery truncates it.
  Bytes pre_image = std::move(rig.mem.Snapshot(segment)).value();
  dsp::RecoveryReport report = rig.Reboot();
  const uint64_t orphan_count = report.orphaned_blocks_gced;
  ASSERT_GT(orphan_count, 0u);
  const uint64_t first_index =
      (pre_image.size() / crypto::kSealedBlockSize) - orphan_count;

  // Retry lands on the same rewound block indices...
  ASSERT_TRUE(probe(rig).ok());
  Bytes post_image = std::move(rig.mem.Snapshot(segment)).value();
  for (uint64_t i = 0; i < orphan_count; ++i) {
    const size_t off = (first_index + i) * crypto::kSealedBlockSize;
    Span pre_nonce(pre_image.data() + off, crypto::kBlockNonceSize);
    Span post_nonce(post_image.data() + off, crypto::kBlockNonceSize);
    // ...under a different nonce epoch: no (key, nonce, index) reuse, no
    // two-time pad for whoever holds both disk images.
    EXPECT_FALSE(pre_nonce == post_nonce)
        << "nonce reused at rewound block index " << (first_index + i);
  }
}

TEST(DurableCorruptionTest, TruncatedSegmentQuarantines) {
  dsp::MemEnv mem;
  Bytes container_b = MakeContainer(72);
  {
    auto server = MustOpen(&mem);
    ASSERT_TRUE(server->Publish("a", MakeContainer(71, 6000),
                                RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Publish("b", container_b, RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Close().ok());
  }
  // Cut the data file mid-way: "a"'s extent loses blocks, "b"'s extent
  // (later in the file) vanishes entirely.
  dsp::DiskFaultPlan plan;
  plan.truncates.push_back({"data-000000", crypto::kSealedBlockSize});
  dsp::FaultyEnv faulty(&mem, plan);
  auto server = MustOpen(&faulty);
  // Clean marker present, so the loss surfaces lazily at first access —
  // as a typed integrity error, never a silent partial document.
  EXPECT_TRUE(server->recovery().clean_shutdown);
  EXPECT_EQ(server->GetContainer("a").status().code(),
            StatusCode::kIntegrityError);
  EXPECT_EQ(server->GetContainer("b").status().code(),
            StatusCode::kIntegrityError);
  EXPECT_EQ(server->quarantined().size(), 2u);
}

// --- Warm vs cold open -------------------------------------------------------

TEST(DurableServerTest, CleanShutdownOpensWarmCrashOpensCold) {
  dsp::MemEnv env;
  {
    auto server = MustOpen(&env);
    ASSERT_TRUE(server->Publish("a", MakeContainer(81), RulesBlobFor(1)).ok());
    ASSERT_TRUE(server->Close().ok());
  }
  {
    // Warm: the marker is present, nothing is verified up front.
    auto server = MustOpen(&env);
    EXPECT_TRUE(server->recovery().clean_shutdown);
    EXPECT_EQ(server->recovery().blocks_verified, 0u);
    EXPECT_TRUE(server->OpenDocument("a").ok());  // lazy load on access
    // Dropped WITHOUT Close(): the next open must take the cold path.
  }
  auto server = MustOpen(&env);
  EXPECT_FALSE(server->recovery().clean_shutdown);
  EXPECT_GT(server->recovery().blocks_verified, 0u);
  EXPECT_TRUE(server->recovery().quarantined.empty());
  EXPECT_TRUE(server->OpenDocument("a").ok());
}

// --- The full stack over durable shards --------------------------------------

TEST(DurableStackTest, LoadHarnessRidesOutFaultsOnDurableShards) {
  workload::LoadOptions options;
  options.sessions = 4;
  options.ops_per_session = 8;
  options.shards = 2;
  options.workers = 2;
  options.documents = 3;
  options.elements_per_doc = 60;
  options.replicas = 3;
  options.backend = workload::StoreBackend::kDurable;
  options.seed = 7;
  options.faults.enabled = true;
  options.faults.crash_replica = 1;
  options.faults.crash_at_op = 4;
  options.faults.crash_heal_at_op = 12;
  options.faults.partition_replica = 2;
  options.faults.partition_at_op = 8;
  options.faults.partition_heal_at_op = 20;

  workload::LoadReport report = workload::RunLoad(options);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.stale_reads_served, 0u);
  EXPECT_GE(report.reintegrations, 1u);  // the durable replica caught up
  EXPECT_GT(report.queries, 0u);
  EXPECT_GT(report.heartbeats, 0u);
  EXPECT_GT(report.faults_injected, 0u);
}

TEST(DurableStackTest, HeartbeatsTickOnModeledClockWithoutBackoff) {
  // No faults, no retries, no backoff: under the old backoff-hook pump
  // this run would never heartbeat. The modeled cadence must tick anyway.
  workload::LoadOptions options;
  options.sessions = 2;
  options.ops_per_session = 4;
  options.shards = 1;
  options.workers = 1;
  options.documents = 2;
  options.elements_per_doc = 60;
  options.replicas = 2;
  options.heartbeat_interval_sec = 0.005;
  options.seed = 11;

  workload::LoadReport report = workload::RunLoad(options);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_GT(report.heartbeats, 0u);
}

}  // namespace
}  // namespace csxa
