// Edge cases and failure injection for the streaming evaluator and the
// card engine: degenerate documents, adversarial rule sets, resource
// exhaustion mid-stream, deep nesting, Zipfian tag skew.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/evaluator.h"
#include "core/ref_evaluator.h"
#include "skipindex/codec.h"
#include "skipindex/filter.h"
#include "scengen/rulegen.h"
#include "xml/generator.h"
#include "xml/writer.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

std::string RunView(const std::string& doc_text, const std::string& rules_text,
                const std::string& query = "") {
  auto doc = xml::DomDocument::Parse(doc_text).value();
  auto rules = core::RuleSet::ParseText(rules_text).value();
  xpath::PathExpr q;
  const xpath::PathExpr* qp = nullptr;
  if (!query.empty()) {
    q = xpath::ParsePath(query).value();
    qp = &q;
  }
  xml::CanonicalWriter w;
  auto ev = core::StreamingEvaluator::Create(rules.ForSubject("u"), qp, &w)
                .value();
  EXPECT_TRUE(doc.root()->EmitEvents(ev.get()).ok());
  EXPECT_TRUE(ev->Finish().ok());
  // Cross-check against the oracle on every edge case.
  auto ref = core::BuildAuthorizedView(doc, rules.ForSubject("u"), qp).value();
  EXPECT_EQ(w.str(), ref.Serialize()) << doc_text << " | " << rules_text;
  return w.str();
}

TEST(EvaluatorEdgeTest, SingleElementDocument) {
  EXPECT_EQ(RunView("<a/>", "+ u /a"), "<a></a>");
  EXPECT_EQ(RunView("<a/>", "- u /a"), "");
  EXPECT_EQ(RunView("<a/>", ""), "");
}

TEST(EvaluatorEdgeTest, RootOnlyTextDocument) {
  EXPECT_EQ(RunView("<a>only text</a>", "+ u //a"), "<a>only text</a>");
}

TEST(EvaluatorEdgeTest, OnlyNegativeRules) {
  // Closed policy: negatives alone can never deliver anything.
  EXPECT_EQ(RunView("<a><b>x</b></a>", "- u //b"), "");
}

TEST(EvaluatorEdgeTest, DuplicateRules) {
  EXPECT_EQ(RunView("<a><b>x</b></a>", "+ u //b\n+ u //b\n+ u //b"),
            "<a><b>x</b></a>");
}

TEST(EvaluatorEdgeTest, ContradictoryRulesSameObject) {
  EXPECT_EQ(RunView("<a><b>x</b></a>", "+ u //b\n- u //b"), "");
}

TEST(EvaluatorEdgeTest, VeryDeepDocument) {
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<d>";
    close.insert(0, "</d>");
  }
  std::string doc = open + "<leaf>x</leaf>" + close;
  std::string out = RunView(doc, "+ u //leaf");
  EXPECT_NE(out.find("<leaf>x</leaf>"), std::string::npos);
  // 200 scaffolding ancestors must all be present and bare.
  EXPECT_NE(out.find("<d><d>"), std::string::npos);
}

TEST(EvaluatorEdgeTest, ManySiblingsSameTag) {
  std::string doc = "<a>";
  for (int i = 0; i < 300; ++i) doc += "<b><c>1</c></b>";
  doc += "</a>";
  std::string out = RunView(doc, "+ u //b[c=\"1\"]");
  EXPECT_GT(out.size(), 300u * 10);
}

TEST(EvaluatorEdgeTest, RecursiveTagsWithPredicates) {
  // Same tag at several depths, predicate resolving at different times.
  RunView("<a><a><k/><a><x>1</x></a></a><a><x>2</x></a></a>", "+ u //a[k]//x");
  RunView("<a><a><a><k/></a></a></a>", "+ u //a[a/k]");
  RunView("<a><k/><a><a><k/></a></a></a>", "+ u //a[k]\n- u //a[a]");
}

TEST(EvaluatorEdgeTest, PendingInsidePendingResolvesCorrectly) {
  // Outer pending on [k], inner pending on [m]; both resolve late.
  RunView("<r><a><b><m/><x>keep</x></b><k/></a></r>", "+ u //a[k]/b[m]/x");
  RunView("<r><a><b><x>drop</x></b><k/></a></r>", "+ u //a[k]/b[m]/x");
  RunView("<r><a><b><m/><x>drop</x></b></a></r>", "+ u //a[k]/b[m]/x");
}

TEST(EvaluatorEdgeTest, NegativePendingOverPositivePending) {
  RunView("<r><a><p/><q/><x>v</x></a><a><p/><x>w</x></a></r>",
      "+ u //a[p]\n- u //a[q]");
}

TEST(EvaluatorEdgeTest, WildcardOnlyRules) {
  RunView("<a><b><c>1</c></b></a>", "+ u //*");
  RunView("<a><b><c>1</c></b></a>", "+ u /*/*");
  RunView("<a><b><c>1</c></b></a>", "+ u //*[c]");
}

TEST(EvaluatorEdgeTest, QueryDeeperThanRules) {
  RunView("<a><b><c><d>x</d></c></b></a>", "+ u //b", "//c/d");
}

TEST(EvaluatorEdgeTest, ZipfSkewedRandomDocs) {
  // Tag distribution heavily skewed: many collisions in the token stack.
  Rng rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kRandom;
    gp.target_elements = 120;
    gp.vocabulary = 3;  // extreme reuse of tags
    gp.max_depth = 10;
    gp.seed = 5000 + static_cast<uint64_t>(iter);
    auto doc = xml::GenerateDocument(gp);
    scengen::RuleGenParams rp;
    rp.num_rules = 5;
    rp.path.predicate_prob = 0.4;
    auto rules = scengen::GenerateRules(doc, "u", rp, &rng);
    xml::CanonicalWriter w;
    auto ev = core::StreamingEvaluator::Create(rules.ForSubject("u"),
                                               nullptr, &w)
                  .value();
    ASSERT_TRUE(doc.root()->EmitEvents(ev.get()).ok());
    ASSERT_TRUE(ev->Finish().ok());
    auto ref =
        core::BuildAuthorizedView(doc, rules.ForSubject("u"), nullptr).value();
    ASSERT_EQ(w.str(), ref.Serialize()) << "iter " << iter;
  }
}

TEST(EvaluatorEdgeTest, StatsDistinguishPermitDenyPending) {
  auto doc = xml::DomDocument::Parse(
                 "<r><a><k/><x>1</x></a><b>2</b></r>")
                 .value();
  auto rules = core::RuleSet::ParseText("+ u //a[k]").value();
  xml::CanonicalWriter w;
  auto ev =
      core::StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &w)
          .value();
  ASSERT_TRUE(doc.root()->EmitEvents(ev.get()).ok());
  ASSERT_TRUE(ev->Finish().ok());
  const auto& st = ev->stats();
  EXPECT_GT(st.nodes_initially_pending, 0u);  // <a> awaited [k]
  EXPECT_GT(st.nodes_permitted, 0u);
  EXPECT_GT(st.nodes_denied, 0u);  // <b> and <r>
  EXPECT_EQ(st.nodes_permitted + st.nodes_denied, 5u);
}

TEST(EvaluatorEdgeTest, SkipDecisionRefusedWhilePending) {
  // While an ancestor's predicate is unresolved, nothing may be skipped
  // even if the current view looks deniable.
  auto doc = xml::DomDocument::Parse(
                 "<r><a><big><x>1</x></big><k/></a></r>")
                 .value();
  auto rules = core::RuleSet::ParseText("+ u //a[k]").value();
  xml::CanonicalWriter w;
  auto ev =
      core::StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &w)
          .value();
  ASSERT_TRUE(ev->OnEvent(xml::Event::Open("r")).ok());
  ASSERT_TRUE(ev->OnEvent(xml::Event::Open("a")).ok());
  ASSERT_TRUE(ev->OnEvent(xml::Event::Open("big")).ok());
  auto no_tag = [](std::string_view) { return false; };
  // `big` is inside the pending <a>: its delivery is undecided, skip must
  // be refused.
  EXPECT_FALSE(ev->CanSkipCurrentSubtree(no_tag, false, true));
}

TEST(CardEngineEdgeTest, StrictRamFailsMidStreamNotUpfront) {
  // Failure injection: the budget blows only once the pending buffer
  // grows, exercising the abort path deep inside the filter loop.
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kNewsFeed;
  gp.target_elements = 400;
  gp.seed = 77;
  auto doc = xml::GenerateDocument(gp);
  auto rules = core::RuleSet::ParseText("+ u //item[rating=\"G\"]\n").value();
  auto encoded = skipindex::EncodeDocument(doc, {}).value();
  skipindex::MemorySource src(encoded);
  auto dec = skipindex::DocumentDecoder::Open(&src).value();
  xml::CanonicalWriter w;
  auto ev =
      core::StreamingEvaluator::Create(rules.ForSubject("u"), nullptr, &w)
          .value();
  size_t events_before_failure = 0;
  skipindex::FilterOptions fo;
  fo.on_event = [&]() -> Status {
    ++events_before_failure;
    if (ev->ModeledRamBytes() + dec->ModeledBytes() > 500) {
      return Status::ResourceExhausted("modeled RAM exceeded");
    }
    return Status::OK();
  };
  Status st = skipindex::RunFiltered(dec.get(), ev.get(), fo, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(events_before_failure, 10u);  // failed mid-stream, not at start
}

}  // namespace
}  // namespace csxa
