// Unit tests for the common runtime: Status/Result, byte codecs, varints,
// bit vectors, RNG determinism, hex.

#include <gtest/gtest.h>

#include "common/bitvec.h"
#include "common/bytes.h"
#include "common/hex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/varint.h"

namespace csxa {
namespace {

TEST(StatusTest, OkIsDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 9; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::IoError("x"); };
  auto outer = [&]() -> Status {
    CSXA_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0x1234);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0102030405060708ull);
  w.PutString("hello");
  ByteReader r(w.bytes());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0102030405060708ull);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, ReaderUnderflowLeavesCursor) {
  ByteWriter w;
  w.PutU8(1);
  ByteReader r(w.bytes());
  uint32_t v;
  EXPECT_FALSE(r.GetU32(&v));
  uint8_t b;
  EXPECT_TRUE(r.GetU8(&b));
  EXPECT_EQ(b, 1);
}

TEST(BytesTest, SpanSubspanClamps) {
  Bytes data = {1, 2, 3, 4};
  Span s(data);
  EXPECT_EQ(s.subspan(2).size(), 2u);
  EXPECT_EQ(s.subspan(10).size(), 0u);
  EXPECT_EQ(s.subspan(1, 2).size(), 2u);
  EXPECT_EQ(s.subspan(3, 10).size(), 1u);
}

TEST(VarintTest, RoundTripsBoundaries) {
  const uint64_t values[] = {0,    1,    127,        128,
                             300,  16383, 16384,     UINT32_MAX,
                             UINT64_MAX, 0x8000000000000000ull};
  for (uint64_t v : values) {
    ByteWriter w;
    PutVarint(&w, v);
    EXPECT_EQ(w.size(), VarintLength(v));
    ByteReader r(w.bytes());
    uint64_t back;
    ASSERT_TRUE(GetVarint(&r, &back));
    EXPECT_EQ(back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(VarintTest, RejectsTruncated) {
  Bytes b = {0x80, 0x80};
  ByteReader r(b);
  uint64_t v;
  EXPECT_FALSE(GetVarint(&r, &v));
}

TEST(BitVecTest, SetTestClear) {
  BitVec v(130);
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_FALSE(v.Test(1));
  EXPECT_EQ(v.Count(), 3u);
  v.Clear(64);
  EXPECT_EQ(v.Count(), 2u);
}

TEST(BitVecTest, SubsetAndIntersect) {
  BitVec a(70), b(70);
  a.Set(3);
  a.Set(65);
  b.Set(3);
  b.Set(65);
  b.Set(9);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  BitVec c(70);
  c.Set(50);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(BitVecTest, RankSelect) {
  BitVec v(100);
  v.Set(5);
  v.Set(20);
  v.Set(77);
  EXPECT_EQ(v.RankBefore(5), 0u);
  EXPECT_EQ(v.RankBefore(6), 1u);
  EXPECT_EQ(v.RankBefore(78), 3u);
  EXPECT_EQ(v.SelectSet(0), 5u);
  EXPECT_EQ(v.SelectSet(2), 77u);
  EXPECT_EQ(v.SelectSet(3), 100u);
}

TEST(BitVecTest, EncodeDecodeRoundTrip) {
  BitVec v(19);
  v.Set(0);
  v.Set(7);
  v.Set(18);
  ByteWriter w;
  v.EncodeTo(&w);
  EXPECT_EQ(w.size(), 3u);
  ByteReader r(w.bytes());
  BitVec back;
  ASSERT_TRUE(BitVec::DecodeFrom(&r, 19, &back));
  EXPECT_EQ(v, back);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t r = rng.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(11);
  size_t low = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Zipf(100, 0.99) < 10) ++low;
  }
  EXPECT_GT(low, 800u);  // heavy head
}

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xAB, 0xFF};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = HexDecode(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

TEST(HexTest, RejectsOddAndInvalid) {
  EXPECT_FALSE(HexDecode("abc").ok());
  EXPECT_FALSE(HexDecode("zz").ok());
  EXPECT_TRUE(HexDecode("AbCd").ok());
}

}  // namespace
}  // namespace csxa
