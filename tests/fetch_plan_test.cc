// The planner differential suite: the same query under per-chunk,
// windowed and skip-index-planned fetch scheduling must deliver
// byte-identical views at byte-identical card transfer/crypto cost —
// only the round-trip count (and thus modeled latency) may move, and it
// must move monotonically: planned <= windowed <= per-chunk. Plans are
// advisory: wrong, stale, hostile or absent plans cost round trips,
// never correctness.

#include <gtest/gtest.h>

#include <vector>

#include "core/rule.h"
#include "dsp/service.h"
#include "dsp/store.h"
#include "pki/registry.h"
#include "proxy/publisher.h"
#include "proxy/terminal.h"
#include "skipindex/codec.h"
#include "soe/prefetch.h"
#include "xml/generator.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using proxy::FetchPolicy;
using proxy::Publisher;
using proxy::QueryOptions;
using proxy::QueryResult;
using proxy::Terminal;
using soe::CardProfile;
using soe::FetchPlan;
using soe::PlannedProvider;
using skipindex::ChunkRun;

constexpr uint32_t kChunkSize = 128;

xml::DomDocument MakeDoc(size_t elements, uint64_t seed) {
  xml::GeneratorParams gp;
  gp.profile = xml::DocProfile::kHospital;
  gp.target_elements = elements;
  gp.seed = seed;
  gp.text_avg_len = 48;
  return xml::GenerateDocument(gp);
}

// Card transfer and crypto cost must not depend on the fetch schedule:
// planned/prefetched-but-unread chunks stay in the terminal.
void ExpectSameCardCost(const QueryResult& a, const QueryResult& b) {
  EXPECT_EQ(a.xml, b.xml);
  EXPECT_EQ(a.card.bytes_transferred, b.card.bytes_transferred);
  EXPECT_EQ(a.card.bytes_decrypted, b.card.bytes_decrypted);
  EXPECT_DOUBLE_EQ(a.card.crypto_seconds, b.card.crypto_seconds);
  EXPECT_DOUBLE_EQ(a.card.transfer_seconds, b.card.transfer_seconds);
}

// The owner-side planning pass over the same (deterministic) encoding the
// publisher sealed: what a publisher would ship next to the document.
FetchPlan OwnerPlan(const xml::DomDocument& doc, const std::string& rules_text,
                    const std::string& subject, const std::string& query,
                    bool use_skip = true) {
  Bytes encoded =
      skipindex::EncodeDocument(doc, skipindex::EncodeOptions{}).value();
  core::RuleSet rules = core::RuleSet::ParseText(rules_text).value();
  xpath::PathExpr parsed;
  const xpath::PathExpr* qp = nullptr;
  if (!query.empty()) {
    parsed = xpath::ParsePath(query).value();
    qp = &parsed;
  }
  return soe::ComputeFetchPlan(encoded, kChunkSize, rules.ForSubject(subject),
                               qp, use_skip)
      .value();
}

// --- The headline differential ---------------------------------------------

TEST(FetchPlanTest, PlannedVsWindowedVsPerChunkDifferential) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 21);
  proxy::PublishOptions popt;
  popt.chunk_size = kChunkSize;
  xml::DomDocument doc = MakeDoc(3000, 5);
  const std::string rules = "+ u //patient/admin\n";  // skip-heavy
  ASSERT_TRUE(publisher.Publish("h", doc, rules, popt).ok());

  auto run = [&](FetchPolicy policy, const FetchPlan* plan) {
    Terminal t("u", CardProfile::EGate(), &dsp, &registry);
    EXPECT_TRUE(t.Provision("h").ok());
    QueryOptions q;
    q.fetch_policy = policy;
    q.plan = plan;
    return t.Query("h", q);
  };

  auto per_chunk = run(FetchPolicy::kPerChunk, nullptr);
  ASSERT_TRUE(per_chunk.ok()) << per_chunk.status().ToString();
  auto windowed = run(FetchPolicy::kWindowed, nullptr);
  ASSERT_TRUE(windowed.ok()) << windowed.status().ToString();
  FetchPlan plan = OwnerPlan(doc, rules, "u", "");
  ASSERT_FALSE(plan.runs.empty());
  auto planned = run(FetchPolicy::kPlanned, &plan);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();

  // Byte-identical views, byte-identical card transfer/crypto.
  ExpectSameCardCost(per_chunk.value(), windowed.value());
  ExpectSameCardCost(per_chunk.value(), planned.value());

  // Monotonically non-increasing round trips: planned <= windowed <=
  // per-chunk — and strictly better at both steps on this skip-heavy
  // workload.
  EXPECT_LT(windowed.value().dsp_round_trips,
            per_chunk.value().dsp_round_trips);
  EXPECT_LT(planned.value().dsp_round_trips,
            windowed.value().dsp_round_trips);
  EXPECT_LE(planned.value().card.round_trip_seconds,
            windowed.value().card.round_trip_seconds);
  EXPECT_LE(planned.value().card.total_seconds,
            windowed.value().card.total_seconds);

  // The acceptance bar: skip-heavy planned round trips (open + fetches)
  // within 2x the number of contiguous needed ranges. With an unbounded
  // trip cap the whole plan is in fact ONE multi-span trip.
  EXPECT_EQ(planned.value().plan_ranges, plan.runs.size());
  EXPECT_EQ(planned.value().plan_miss_trips, 0u);
  EXPECT_EQ(planned.value().plan_trips, 1u);
  EXPECT_LE(planned.value().dsp_round_trips, 2 * plan.runs.size());
  EXPECT_EQ(planned.value().dsp_round_trips, 2u);  // open + one batch
}

TEST(FetchPlanTest, FullScanPlanIsOneContiguousRun) {
  // A subject authorized for everything skips nothing: the plan collapses
  // to a single run covering the container, and the planned session is
  // open + one trip.
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 22);
  proxy::PublishOptions popt;
  popt.chunk_size = kChunkSize;
  xml::DomDocument doc = MakeDoc(800, 6);
  const std::string rules = "+ u /hospital\n";
  ASSERT_TRUE(publisher.Publish("f", doc, rules, popt).ok());

  FetchPlan plan = OwnerPlan(doc, rules, "u", "");
  ASSERT_EQ(plan.runs.size(), 1u);
  EXPECT_EQ(plan.runs[0].first, 0u);

  Terminal t("u", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(t.Provision("f").ok());
  QueryOptions q;
  q.fetch_policy = FetchPolicy::kPlanned;
  q.plan = &plan;
  auto planned = t.Query("f", q);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(planned.value().dsp_round_trips, 2u);
  EXPECT_EQ(planned.value().plan_miss_trips, 0u);

  Terminal w("u", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(w.Provision("f").ok());
  auto windowed = w.Query("f", QueryOptions{});
  ASSERT_TRUE(windowed.ok());
  ExpectSameCardCost(windowed.value(), planned.value());
}

// --- Learned plans (the terminal's learn-on-first-run path) -----------------

TEST(FetchPlanTest, TerminalLearnsPlanAndSecondQueryRidesIt) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 23);
  proxy::PublishOptions popt;
  popt.chunk_size = kChunkSize;
  ASSERT_TRUE(
      publisher.Publish("h", MakeDoc(2000, 7), "+ u //patient/admin\n", popt)
          .ok());

  Terminal t("u", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(t.Provision("h").ok());
  QueryOptions q;
  q.fetch_policy = FetchPolicy::kPlanned;  // no plan supplied

  // First run: windowed under the hood, records the plan.
  auto first = t.Query("h", q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first.value().plan_learned);
  EXPECT_EQ(first.value().plan_trips, 0u);
  EXPECT_GT(first.value().plan_ranges, 0u);
  EXPECT_EQ(t.cached_plans(), 1u);

  // Second identical query rides the learned plan: same view, same card
  // cost, strictly fewer round trips, no misses (the plan IS the card's
  // own access pattern).
  auto second = t.Query("h", q);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(second.value().plan_learned);
  EXPECT_EQ(second.value().plan_trips, 1u);
  EXPECT_EQ(second.value().plan_miss_trips, 0u);
  ExpectSameCardCost(first.value(), second.value());
  EXPECT_LT(second.value().dsp_round_trips, first.value().dsp_round_trips);
  EXPECT_EQ(t.cached_plans(), 1u);

  // A different query misses the cache and learns its own plan.
  QueryOptions other = q;
  other.query = "//patient/admin";
  auto third = t.Query("h", other);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_TRUE(third.value().plan_learned);
  EXPECT_EQ(t.cached_plans(), 2u);
}

TEST(FetchPlanTest, PolicyUpdateInvalidatesLearnedPlans) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 24);
  proxy::PublishOptions popt;
  popt.chunk_size = kChunkSize;
  auto receipt = publisher.Publish("folder", MakeDoc(1200, 8),
                                   "+ doctor //patient\n", popt);
  ASSERT_TRUE(receipt.ok());

  Terminal t("doctor", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(t.Provision("folder").ok());
  QueryOptions q;
  q.fetch_policy = FetchPolicy::kPlanned;
  auto before = t.Query("folder", q);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().plan_learned);
  EXPECT_EQ(t.cached_plans(), 1u);

  // The rules version bumps: the cached plan can never match again and
  // must not be consulted — the next query re-learns under the new
  // policy and delivers the restricted view.
  ASSERT_TRUE(publisher
                  .UpdateRules("folder", receipt.value().key,
                               "+ doctor //patient\n- doctor //patient/ssn\n")
                  .ok());
  auto after = t.Query("folder", q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after.value().plan_learned);
  EXPECT_EQ(t.cached_plans(), 1u);  // the stale entry was dropped
  EXPECT_EQ(after.value().xml.find("<ssn>"), std::string::npos);
  EXPECT_NE(before.value().xml.find("<ssn>"), std::string::npos);

  // And the re-learned plan serves the new view with no misses.
  auto replay = t.Query("folder", q);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().plan_miss_trips, 0u);
  EXPECT_EQ(replay.value().xml, after.value().xml);
}

// --- Adversarial / degenerate plans: advisory, never authoritative ----------

TEST(FetchPlanTest, WrongPlansCostTripsNeverCorrectness) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 25);
  proxy::PublishOptions popt;
  popt.chunk_size = kChunkSize;
  xml::DomDocument doc = MakeDoc(1500, 9);
  const std::string rules = "+ u //patient/admin\n";
  ASSERT_TRUE(publisher.Publish("h", doc, rules, popt).ok());

  Terminal reference("u", CardProfile::EGate(), &dsp, &registry);
  ASSERT_TRUE(reference.Provision("h").ok());
  auto windowed = reference.Query("h", QueryOptions{});
  ASSERT_TRUE(windowed.ok());

  FetchPlan good = OwnerPlan(doc, rules, "u", "");
  std::vector<std::pair<const char*, FetchPlan>> hostile;
  hostile.emplace_back("empty", FetchPlan{});
  {
    FetchPlan shifted = good;  // systematically off by a few chunks
    for (ChunkRun& r : shifted.runs) r.first += 3;
    hostile.emplace_back("shifted", std::move(shifted));
  }
  {
    FetchPlan eof;  // every run far past the container end
    eof.runs = {ChunkRun{100000, 5}, ChunkRun{200000, 1}};
    hostile.emplace_back("past-eof", std::move(eof));
  }
  {
    FetchPlan messy = good;  // duplicated + overlapping + zero-count runs
    messy.runs.insert(messy.runs.end(), good.runs.begin(), good.runs.end());
    messy.runs.push_back(ChunkRun{0, 0});
    if (!good.runs.empty()) {
      messy.runs.push_back(ChunkRun{good.runs[0].first, good.runs[0].count + 2});
    }
    hostile.emplace_back("overlapping", std::move(messy));
  }

  for (auto& [label, plan] : hostile) {
    Terminal t("u", CardProfile::EGate(), &dsp, &registry);
    ASSERT_TRUE(t.Provision("h").ok()) << label;
    QueryOptions q;
    q.fetch_policy = FetchPolicy::kPlanned;
    q.plan = &plan;
    auto result = t.Query("h", q);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    ExpectSameCardCost(windowed.value(), result.value());
  }
}

TEST(FetchPlanTest, ChunksPerTripCapTradesTripsForBuffer) {
  dsp::DspServer dsp;
  pki::KeyRegistry registry;
  Publisher publisher(&dsp, &registry, 26);
  proxy::PublishOptions popt;
  popt.chunk_size = kChunkSize;
  xml::DomDocument doc = MakeDoc(2000, 10);
  const std::string rules = "+ u //patient/admin\n";
  ASSERT_TRUE(publisher.Publish("h", doc, rules, popt).ok());
  FetchPlan plan = OwnerPlan(doc, rules, "u", "");
  ASSERT_GT(plan.total_chunks(), 4u);

  auto run = [&](uint32_t cap) {
    Terminal t("u", CardProfile::EGate(), &dsp, &registry);
    EXPECT_TRUE(t.Provision("h").ok());
    QueryOptions q;
    q.fetch_policy = FetchPolicy::kPlanned;
    q.plan = &plan;
    q.plan_chunks_per_trip = cap;
    return t.Query("h", q);
  };

  auto unbounded = run(0);
  ASSERT_TRUE(unbounded.ok());
  auto capped = run(4);
  ASSERT_TRUE(capped.ok());

  ExpectSameCardCost(unbounded.value(), capped.value());
  EXPECT_EQ(unbounded.value().plan_trips, 1u);
  EXPECT_GT(capped.value().plan_trips, unbounded.value().plan_trips);
  EXPECT_EQ(capped.value().plan_miss_trips, 0u);
  // Every group stays within the cap (single oversized runs excepted, and
  // a 4-chunk cap over 1..n-chunk runs has none of those here beyond the
  // run granularity).
  EXPECT_LE(capped.value().plan_trips,
            (plan.total_chunks() + 1) / 2 + plan.runs.size());
}

// --- FetchPlan / PlannedProvider unit coverage ------------------------------

TEST(FetchPlanTest, NormalizeSortsMergesAndDropsEmpties) {
  FetchPlan plan;
  plan.runs = {ChunkRun{8, 2}, ChunkRun{0, 2}, ChunkRun{2, 1},  // adjacent
               ChunkRun{1, 3},                                  // overlapping
               ChunkRun{5, 0},                                  // empty
               ChunkRun{10, 1}};                                // adjacent to 8+2
  plan.Normalize();
  ASSERT_EQ(plan.runs.size(), 2u);
  EXPECT_EQ(plan.runs[0].first, 0u);
  EXPECT_EQ(plan.runs[0].count, 4u);  // [0,4) from {0,2}+{2,1}+{1,3}
  EXPECT_EQ(plan.runs[1].first, 8u);
  EXPECT_EQ(plan.runs[1].count, 3u);  // [8,11) from {8,2}+{10,1}
  EXPECT_EQ(plan.total_chunks(), 7u);
  EXPECT_TRUE(plan.Covers(0));
  EXPECT_TRUE(plan.Covers(3));
  EXPECT_FALSE(plan.Covers(4));
  EXPECT_FALSE(plan.Covers(7));
  EXPECT_TRUE(plan.Covers(10));
  EXPECT_FALSE(plan.Covers(11));
}

TEST(FetchPlanTest, FromChunkSequenceCoalescesObservedRequests) {
  FetchPlan plan = FetchPlan::FromChunkSequence({0, 1, 2, 7, 8, 2, 15});
  ASSERT_EQ(plan.runs.size(), 3u);
  EXPECT_EQ(plan.runs[0].first, 0u);
  EXPECT_EQ(plan.runs[0].count, 3u);
  EXPECT_EQ(plan.runs[1].first, 7u);
  EXPECT_EQ(plan.runs[1].count, 2u);
  EXPECT_EQ(plan.runs[2].first, 15u);
  EXPECT_EQ(plan.runs[2].count, 1u);
}

// In-memory backend counting trips: GetChunks and GetSpans are one round
// trip each, whatever they carry.
class CountingProvider : public soe::ChunkProvider {
 public:
  explicit CountingProvider(uint32_t chunk_count) : chunk_count_(chunk_count) {}
  size_t span_batches = 0;

 protected:
  Result<std::vector<soe::ChunkData>> FetchChunks(uint32_t first,
                                                  uint32_t count) override {
    if (first + count > chunk_count_) {
      return Status::NotFound("chunk out of range");
    }
    std::vector<soe::ChunkData> chunks;
    for (uint32_t i = first; i < first + count; ++i) {
      soe::ChunkData chunk;
      chunk.ciphertext = Bytes{static_cast<uint8_t>(i)};
      chunks.push_back(std::move(chunk));
    }
    return chunks;
  }

  Result<std::vector<soe::ChunkData>> FetchSpans(
      const std::vector<ChunkRun>& spans) override {
    ++span_batches;
    std::vector<soe::ChunkData> out;
    for (const ChunkRun& r : spans) {
      CSXA_ASSIGN_OR_RETURN(std::vector<soe::ChunkData> part,
                            FetchChunks(r.first, r.count));
      for (auto& c : part) out.push_back(std::move(c));
    }
    return out;
  }

 private:
  uint32_t chunk_count_;
};

TEST(FetchPlanTest, PlannedProviderServesPlanInOneTripAndFallsBackOnMisses) {
  CountingProvider backend(16);
  FetchPlan plan;
  plan.runs = {ChunkRun{0, 3}, ChunkRun{8, 2}};
  PlannedProvider provider(&backend, 16, plan);

  // First planned chunk pulls the WHOLE plan in one multi-span trip; the
  // rest of the plan is served from the buffer.
  for (uint32_t c : {0u, 1u, 2u, 8u, 9u}) {
    auto chunk = provider.GetChunk(c);
    ASSERT_TRUE(chunk.ok()) << c;
    EXPECT_EQ(chunk.value().ciphertext[0], static_cast<uint8_t>(c)) << c;
  }
  EXPECT_EQ(backend.span_batches, 1u);
  EXPECT_EQ(provider.round_trips(), 1u);
  EXPECT_EQ(provider.planned_trips(), 1u);
  EXPECT_EQ(provider.plan_hits(), 5u);
  EXPECT_EQ(provider.plan_misses(), 0u);
  EXPECT_EQ(provider.chunks_fetched(), 5u);

  // A chunk outside the plan falls through to the inner provider: one
  // ordinary trip, correct payload, counted as a miss.
  auto miss = provider.GetChunk(5);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.value().ciphertext[0], 5u);
  EXPECT_EQ(provider.plan_misses(), 1u);
  EXPECT_EQ(provider.round_trips(), 2u);

  // Out of range propagates the backend's error (through the fallback).
  EXPECT_FALSE(provider.GetChunk(99).ok());
}

TEST(FetchPlanTest, PlannedProviderClampsHostileGeometry) {
  CountingProvider backend(8);
  FetchPlan plan;
  plan.runs = {ChunkRun{6, 10},      // straddles the end: clamp to [6,8)
               ChunkRun{50, 4},      // entirely past the end: dropped
               ChunkRun{0, 1}};
  PlannedProvider provider(&backend, 8, plan);
  EXPECT_EQ(provider.plan().runs.size(), 2u);
  EXPECT_EQ(provider.plan().total_chunks(), 3u);

  for (uint32_t c : {0u, 6u, 7u}) {
    auto chunk = provider.GetChunk(c);
    ASSERT_TRUE(chunk.ok()) << c;
    EXPECT_EQ(chunk.value().ciphertext[0], static_cast<uint8_t>(c));
  }
  EXPECT_EQ(provider.plan_misses(), 0u);
  EXPECT_EQ(backend.span_batches, 1u);
}

TEST(FetchPlanTest, PlannedProviderGroupsRespectTripCap) {
  CountingProvider backend(32);
  FetchPlan plan;
  plan.runs = {ChunkRun{0, 2}, ChunkRun{4, 2}, ChunkRun{8, 2},
               ChunkRun{12, 2}, ChunkRun{20, 6}};
  soe::PlannedOptions opt;
  opt.max_chunks_per_trip = 4;
  PlannedProvider provider(&backend, 32, plan, opt);

  // Groups: {0,2}+{4,2} | {8,2}+{12,2} | {20,6} (an oversized run travels
  // whole). Touching one chunk of a group fetches that group only.
  ASSERT_TRUE(provider.GetChunk(0).ok());
  EXPECT_EQ(provider.planned_trips(), 1u);
  EXPECT_EQ(provider.chunks_fetched(), 4u);
  ASSERT_TRUE(provider.GetChunk(13).ok());
  EXPECT_EQ(provider.planned_trips(), 2u);
  ASSERT_TRUE(provider.GetChunk(25).ok());
  EXPECT_EQ(provider.planned_trips(), 3u);
  EXPECT_EQ(provider.chunks_fetched(), 14u);
  EXPECT_EQ(provider.plan_misses(), 0u);
  EXPECT_EQ(backend.span_batches, 3u);
}

TEST(FetchPlanTest, DefaultFetchSpansGathersPerRun) {
  // A provider that does not override FetchSpans still serves multi-span
  // requests (gathering run by run) and still counts ONE round trip: the
  // honest accounting for backends with no wire to batch over.
  class PlainProvider : public soe::ChunkProvider {
   public:
    size_t fetch_calls = 0;

   protected:
    Result<std::vector<soe::ChunkData>> FetchChunks(uint32_t first,
                                                    uint32_t count) override {
      ++fetch_calls;
      std::vector<soe::ChunkData> chunks;
      for (uint32_t i = first; i < first + count; ++i) {
        soe::ChunkData chunk;
        chunk.ciphertext = Bytes{static_cast<uint8_t>(i)};
        chunks.push_back(std::move(chunk));
      }
      return chunks;
    }
  };
  PlainProvider plain;
  auto chunks = plain.GetSpans({ChunkRun{2, 2}, ChunkRun{0, 0}, ChunkRun{7, 1}});
  ASSERT_TRUE(chunks.ok());
  ASSERT_EQ(chunks.value().size(), 3u);
  EXPECT_EQ(chunks.value()[0].ciphertext[0], 2u);
  EXPECT_EQ(chunks.value()[1].ciphertext[0], 3u);
  EXPECT_EQ(chunks.value()[2].ciphertext[0], 7u);
  EXPECT_EQ(plain.fetch_calls, 2u);  // the empty run is skipped
  EXPECT_EQ(plain.round_trips(), 1u);
}

}  // namespace
}  // namespace csxa
