// APDU-level tests of the card applet state machine: command ordering,
// error status words, output paging — the "integration inside the SOE"
// face of demonstration objective 2.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "dsp/store.h"
#include "proxy/publisher.h"
#include "pki/registry.h"
#include "soe/applet.h"
#include "xml/generator.h"

namespace csxa {
namespace {

using soe::ApduCommand;
using soe::ApduResponse;
using soe::CsxaApplet;
using soe::Ins;

struct AppletFixture {
  dsp::DspServer server;
  pki::KeyRegistry registry;
  proxy::Publisher publisher{&server, &registry, 808};
  crypto::SymmetricKey key;
  Bytes header;
  Bytes sealed_rules;
  std::unique_ptr<dsp::ServiceChunkProvider> provider;
  CsxaApplet applet{soe::CardProfile::EGate()};

  AppletFixture() {
    xml::GeneratorParams gp;
    gp.profile = xml::DocProfile::kAgenda;
    gp.target_elements = 120;
    gp.seed = 3;
    auto doc = xml::GenerateDocument(gp);
    auto receipt =
        publisher.Publish("doc", doc, "+ u /agenda\n- u //note\n");
    CSXA_CHECK(receipt.ok());
    key = receipt.value().key;
    // One OpenDocument round trip: header + sealed rules together.
    auto open = server.OpenDocument("doc");
    CSXA_CHECK(open.ok());
    header = open.value().header;
    sealed_rules = open.value().sealed_rules;
    provider = std::make_unique<dsp::ServiceChunkProvider>(&server, "doc");
    applet.SetChunkProvider(provider.get());
  }

  ApduResponse Select() {
    ApduCommand cmd;
    cmd.ins = Ins::kSelectDocument;
    ByteWriter w;
    w.PutString("doc");
    w.PutLengthPrefixed(header);
    cmd.data = w.Take();
    return applet.Process(cmd);
  }
  ApduResponse PutRules() {
    ApduCommand cmd;
    cmd.ins = Ins::kPutRules;
    cmd.data = sealed_rules;
    return applet.Process(cmd);
  }
  ApduResponse Run(const std::string& subject, const std::string& query) {
    ApduCommand cmd;
    cmd.ins = Ins::kRunQuery;
    ByteWriter w;
    w.PutString(subject);
    w.PutString(query);
    w.PutU8(1);  // use_skip
    cmd.data = w.Take();
    return applet.Process(cmd);
  }
};

TEST(AppletTest, FullCommandSequence) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  EXPECT_EQ(fx.Select().sw, soe::kSwOk);
  EXPECT_EQ(fx.PutRules().sw, soe::kSwOk);
  ApduResponse run = fx.Run("u", "");
  ASSERT_EQ(run.sw, soe::kSwOk);
  ByteReader r(run.data);
  uint64_t output_size = 0;
  ASSERT_TRUE(r.GetU64(&output_size));
  EXPECT_GT(output_size, 0u);

  // Page the output out.
  std::string xml;
  for (;;) {
    ApduCommand fetch;
    fetch.ins = Ins::kFetchOutput;
    ApduResponse slice = fx.applet.Process(fetch);
    ASSERT_TRUE(slice.ok());
    xml.append(reinterpret_cast<const char*>(slice.data.data()),
               slice.data.size());
    if (slice.sw == soe::kSwOk) break;
    EXPECT_EQ(slice.sw, soe::kSwMoreData);
    EXPECT_LE(slice.data.size(), 240u);
  }
  EXPECT_EQ(xml.size(), output_size);
  EXPECT_NE(xml.find("<agenda>"), std::string::npos);
  EXPECT_EQ(xml.find("<note>"), std::string::npos);

  // Stats after a session.
  ApduCommand stats;
  stats.ins = Ins::kGetStats;
  ApduResponse sresp = fx.applet.Process(stats);
  EXPECT_EQ(sresp.sw, soe::kSwOk);
  EXPECT_EQ(sresp.data.size(), 6 * 8u);
}

TEST(AppletTest, SelectWithoutKeyIsSecurityError) {
  AppletFixture fx;
  EXPECT_EQ(fx.Select().sw, soe::kSwSecurityStatus);
}

TEST(AppletTest, RunBeforeSelectFails) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  EXPECT_EQ(fx.Run("u", "").sw, soe::kSwConditionsNotSatisfied);
}

TEST(AppletTest, RunWithoutRulesFails) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  ASSERT_EQ(fx.Select().sw, soe::kSwOk);
  EXPECT_EQ(fx.Run("u", "").sw, soe::kSwConditionsNotSatisfied);
}

TEST(AppletTest, TamperedRulesGiveSecurityStatus) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  ASSERT_EQ(fx.Select().sw, soe::kSwOk);
  fx.sealed_rules[30] ^= 1;
  ASSERT_EQ(fx.PutRules().sw, soe::kSwOk);  // opaque blob accepted...
  EXPECT_EQ(fx.Run("u", "").sw, soe::kSwSecurityStatus);  // ...caught here
}

TEST(AppletTest, MalformedCommandsRejected) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  ApduCommand bad;
  bad.ins = Ins::kSelectDocument;
  bad.data = Bytes{1, 2};  // truncated
  EXPECT_EQ(fx.applet.Process(bad).sw, soe::kSwWrongData);

  ApduCommand unknown;
  unknown.ins = static_cast<Ins>(0xEE);
  EXPECT_EQ(fx.applet.Process(unknown).sw, soe::kSwConditionsNotSatisfied);
}

TEST(AppletTest, BadQuerySurfacesAsInternalFamily) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  ASSERT_EQ(fx.Select().sw, soe::kSwOk);
  ASSERT_EQ(fx.PutRules().sw, soe::kSwOk);
  ApduResponse resp = fx.Run("u", "][not xpath");
  EXPECT_NE(resp.sw, soe::kSwOk);
}

TEST(AppletTest, EndSessionResetsState) {
  AppletFixture fx;
  fx.applet.InstallKey("doc", fx.key);
  ASSERT_EQ(fx.Select().sw, soe::kSwOk);
  ASSERT_EQ(fx.PutRules().sw, soe::kSwOk);
  ASSERT_EQ(fx.Run("u", "").sw, soe::kSwOk);
  ApduCommand end;
  end.ins = Ins::kEndSession;
  EXPECT_EQ(fx.applet.Process(end).sw, soe::kSwOk);
  ApduCommand fetch;
  fetch.ins = Ins::kFetchOutput;
  EXPECT_EQ(fx.applet.Process(fetch).sw, soe::kSwConditionsNotSatisfied);
}

TEST(AppletTest, InstallKeyOverApdu) {
  AppletFixture fx;
  ApduCommand cmd;
  cmd.ins = Ins::kInstallKey;
  ByteWriter w;
  w.PutString("doc");
  w.PutLengthPrefixed(fx.key.bytes());
  cmd.data = w.Take();
  EXPECT_EQ(fx.applet.Process(cmd).sw, soe::kSwOk);
  EXPECT_EQ(fx.Select().sw, soe::kSwOk);
}

}  // namespace
}  // namespace csxa
