// Unit tests for NFA compilation (Fig. 2) and the conservative
// reachability test that drives skip decisions.

#include <gtest/gtest.h>

#include "core/automaton.h"
#include "xpath/parser.h"

namespace csxa {
namespace {

using core::CanReachFinal;
using core::CompiledRule;
using core::CompileExpr;

CompiledRule Compile(const std::string& path) {
  auto expr = xpath::ParsePath(path);
  EXPECT_TRUE(expr.ok()) << path;
  auto rule = CompileExpr(expr.value(), true);
  EXPECT_TRUE(rule.ok()) << path;
  return std::move(rule).value();
}

TEST(AutomatonTest, ChildChainShape) {
  CompiledRule r = Compile("/a/b/c");
  ASSERT_EQ(r.nav.states.size(), 4u);
  EXPECT_EQ(r.nav.final_state, 3);
  EXPECT_FALSE(r.nav.states[0].self_loop);
  EXPECT_EQ(r.nav.states[0].tag, "a");
  EXPECT_EQ(r.nav.states[2].tag, "c");
  EXPECT_TRUE(r.predicates.empty());
}

TEST(AutomatonTest, DescendantSelfLoops) {
  CompiledRule r = Compile("//a/b//c");
  EXPECT_TRUE(r.nav.states[0].self_loop);   // //a
  EXPECT_FALSE(r.nav.states[1].self_loop);  // /b
  EXPECT_TRUE(r.nav.states[2].self_loop);   // //c
}

TEST(AutomatonTest, WildcardStep) {
  CompiledRule r = Compile("/a/*/c");
  EXPECT_FALSE(r.nav.states[0].wildcard);
  EXPECT_TRUE(r.nav.states[1].wildcard);
}

TEST(AutomatonTest, PredicatesAttachToEnteredState) {
  // Fig. 2: R = //b[c]/d — predicate path attached at the state entered
  // when matching b.
  CompiledRule r = Compile("//b[c]/d");
  ASSERT_EQ(r.predicates.size(), 1u);
  EXPECT_TRUE(r.nav.states[0].pred_ids.empty());
  ASSERT_EQ(r.nav.states[1].pred_ids.size(), 1u);  // entered after b
  EXPECT_EQ(r.nav.states[1].pred_ids[0], 0);
  const auto& pred = r.predicates[0];
  EXPECT_EQ(pred.states.size(), 2u);
  EXPECT_EQ(pred.states[0].tag, "c");
  EXPECT_EQ(pred.op, xpath::CmpOp::kExists);
}

TEST(AutomatonTest, ValuePredicateCarriesComparison) {
  CompiledRule r = Compile("//a[b>=\"10\"]");
  ASSERT_EQ(r.predicates.size(), 1u);
  EXPECT_EQ(r.predicates[0].op, xpath::CmpOp::kGe);
  EXPECT_EQ(r.predicates[0].literal, "10");
}

TEST(AutomatonTest, MultiplePredicatesPerStep) {
  CompiledRule r = Compile("//a[b][c=\"1\"]/d");
  EXPECT_EQ(r.predicates.size(), 2u);
  EXPECT_EQ(r.nav.states[1].pred_ids.size(), 2u);
}

TEST(AutomatonTest, TotalStatesCountsPredicates) {
  CompiledRule r = Compile("//a[b/c]/d");
  // nav: 3 states (start, a, d) ... start + 2 steps = 3; pred: start + 2 = 3.
  EXPECT_EQ(r.TotalStates(), 3u + 3u);
}

TEST(ReachabilityTest, TagGateControlsTraversal) {
  CompiledRule r = Compile("//a/b");
  auto in_set = [](std::initializer_list<const char*> tags) {
    std::vector<std::string> v;
    for (const char* t : tags) v.emplace_back(t);
    return [v](std::string_view tag) {
      for (const auto& s : v) {
        if (s == tag) return true;
      }
      return false;
    };
  };
  // From the start state, both a and b must be present.
  EXPECT_TRUE(CanReachFinal(r.nav, {0}, in_set({"a", "b"}), true));
  EXPECT_FALSE(CanReachFinal(r.nav, {0}, in_set({"a"}), true));
  EXPECT_FALSE(CanReachFinal(r.nav, {0}, in_set({"b", "x"}), false));
  // From state 1 (a already matched) only b is needed.
  EXPECT_TRUE(CanReachFinal(r.nav, {1}, in_set({"b"}), true));
  EXPECT_FALSE(CanReachFinal(r.nav, {1}, in_set({"a"}), true));
}

TEST(ReachabilityTest, WildcardNeedsNonEmptySubtree) {
  CompiledRule r = Compile("//*/secret");
  auto has_secret = [](std::string_view t) { return t == "secret"; };
  EXPECT_TRUE(CanReachFinal(r.nav, {0}, has_secret, true));
  EXPECT_FALSE(CanReachFinal(r.nav, {0}, has_secret, false));
}

TEST(ReachabilityTest, FinalStateInActiveSetIsReachable) {
  CompiledRule r = Compile("//a");
  EXPECT_TRUE(CanReachFinal(
      r.nav, {r.nav.final_state}, [](std::string_view) { return false; },
      true));
}

TEST(ReachabilityTest, EmptyActiveSetUnreachable) {
  CompiledRule r = Compile("//a");
  EXPECT_FALSE(CanReachFinal(
      r.nav, {}, [](std::string_view) { return true; }, true));
}

TEST(AutomatonTest, NestedPredicatesRejected) {
  auto expr = xpath::ParsePath("//a[b[c]]");
  ASSERT_TRUE(expr.ok());  // grammar accepts it...
  auto rule = CompileExpr(expr.value(), true);
  EXPECT_FALSE(rule.ok());  // ...but the streaming fragment refuses it
  EXPECT_EQ(rule.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace csxa
