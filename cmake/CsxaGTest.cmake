# Locates GoogleTest: prefers the system package (baked into the CI
# image, so offline builds work), falls back to FetchContent for
# environments with network but no package. Defines GTest::gtest and
# GTest::gtest_main either way.
find_package(GTest QUIET)
if(NOT GTest_FOUND)
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
  )
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  # Recent googletest releases define the GTest:: aliases themselves;
  # only add them for older tags that don't.
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()
