# Locates Google Benchmark: prefers the system package (baked into the CI
# image, so offline builds work), falls back to FetchContent for
# environments with network but no package. Defines benchmark::benchmark
# either way; sets CSXA_HAVE_BENCHMARK for the callers.
#
# Environments with neither the package nor network can configure with
# -DCSXA_FETCH_BENCHMARK=OFF to skip the two Google Benchmark binaries
# instead of failing the download.
option(CSXA_FETCH_BENCHMARK
       "FetchContent Google Benchmark when no system package is found" ON)

find_package(benchmark QUIET)
if(benchmark_FOUND)
  set(CSXA_HAVE_BENCHMARK TRUE)
elseif(CSXA_FETCH_BENCHMARK)
  include(FetchContent)
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_WERROR OFF CACHE BOOL "" FORCE)
  FetchContent_Declare(
    googlebenchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.zip
  )
  FetchContent_MakeAvailable(googlebenchmark)
  # The FetchContent build exports plain `benchmark`; alias to the package
  # namespace the benches link against.
  if(NOT TARGET benchmark::benchmark)
    add_library(benchmark::benchmark ALIAS benchmark)
  endif()
  set(CSXA_HAVE_BENCHMARK TRUE)
else()
  set(CSXA_HAVE_BENCHMARK FALSE)
endif()
